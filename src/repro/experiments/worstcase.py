"""Worst-case experiments: Figures 1/6/18 and Theorems 6.1/6.2/6.3.

Each function re-derives one of the paper's worst-case claims numerically
and returns a plain-data report with paper-vs-measured fields; the
benchmark harness prints them and the test suite asserts the comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..algorithms.acyclic_guarded import (
    acyclic_guarded_scheme,
    optimal_acyclic_throughput,
)
from ..algorithms.exact import optimal_cyclic_lp, order_lp_throughput
from ..core.bounds import (
    THEOREM63_ALPHA,
    THEOREM63_LIMIT,
    acyclic_open_optimum,
    cyclic_open_optimum,
    cyclic_optimum,
    open_only_ratio_bound,
    theorem63_acyclic_upper_bound,
)
from ..core.numerics import safe_ceil_div
from ..core.throughput import scheme_throughput
from ..instances.families import (
    FIVE_SEVENTHS_EPS,
    figure1_instance,
    figure6_instance,
    figure6_optimal_scheme,
    five_sevenths_instance,
    theorem63_instance,
)
from ..instances.generators import random_instance

__all__ = [
    "Figure1Report",
    "figure1_report",
    "Figure6Report",
    "figure6_report",
    "Figure18Report",
    "figure18_report",
    "Theorem63Report",
    "theorem63_report",
    "Theorem61Report",
    "theorem61_report",
]


# ----------------------------------------------------------------------
@dataclass
class Figure1Report:
    """Running example: closed forms vs LP vs constructions."""

    t_star_closed_form: float  #: Lemma 5.1: min(6, 16/3, 22/5) = 4.4
    t_star_lp: float  #: multi-flow LP certificate
    t_ac_search: float  #: dichotomic search (paper: 4)
    t_ac_scheme: float  #: throughput of the constructed low-degree scheme
    greedy_word: str  #: paper: 'gogog' (order 0 3 1 4 2 5, Figure 5)
    scheme_degrees: list[int]


def figure1_report() -> Figure1Report:
    inst = figure1_instance()
    t_star = cyclic_optimum(inst)
    t_lp = optimal_cyclic_lp(inst)
    t_ac, word = optimal_acyclic_throughput(inst)
    sol = acyclic_guarded_scheme(inst)
    return Figure1Report(
        t_star_closed_form=t_star,
        t_star_lp=t_lp,
        t_ac_search=t_ac,
        t_ac_scheme=scheme_throughput(sol.scheme, inst),
        greedy_word=word,
        scheme_degrees=sol.scheme.outdegrees(),
    )


# ----------------------------------------------------------------------
@dataclass
class Figure6Report:
    """Cyclic + guarded may force unbounded degree (one row per m)."""

    m: int
    t_star: float  #: always 1
    scheme_throughput: float  #: the explicit optimal scheme achieves it
    source_degree: int  #: m — grows without bound ...
    source_degree_lower_bound: int  #: ... while ceil(b0/T*) = 1
    acyclic_throughput: float  #: what low-degree acyclic schemes get


def figure6_report(ms: tuple[int, ...] = (2, 4, 8, 16, 32)) -> list[Figure6Report]:
    rows = []
    for m in ms:
        inst = figure6_instance(m)
        scheme = figure6_optimal_scheme(m)
        scheme.validate(inst)
        t = scheme_throughput(scheme, inst, method="maxflow")
        t_ac, _ = optimal_acyclic_throughput(inst)
        rows.append(
            Figure6Report(
                m=m,
                t_star=cyclic_optimum(inst),
                scheme_throughput=t,
                source_degree=scheme.outdegree(0),
                source_degree_lower_bound=safe_ceil_div(
                    inst.source_bw, cyclic_optimum(inst)
                ),
                acyclic_throughput=t_ac,
            )
        )
    return rows


# ----------------------------------------------------------------------
@dataclass
class Figure18Report:
    """Theorem 6.2's tight 5/7 instance at a given epsilon."""

    eps: float
    t_star: float  #: 1 (Lemma 5.1)
    t_sigma1: float  #: order 'ogg': (2/3)(1 + eps)
    t_sigma1_expected: float
    t_sigma2: float  #: order 'gog': 3/4 - eps/2
    t_sigma2_expected: float
    t_sigma3: float  #: order 'ggo' (dominated)
    t_ac: float  #: overall optimum = max of the orders
    ratio: float  #: T*_ac / T* (== 5/7 at eps = 1/14)


def figure18_report(eps: float = FIVE_SEVENTHS_EPS) -> Figure18Report:
    inst = five_sevenths_instance(eps)
    t_star = cyclic_optimum(inst)
    t1 = order_lp_throughput(inst, "ogg")
    t2 = order_lp_throughput(inst, "gog")
    t3 = order_lp_throughput(inst, "ggo")
    t_ac, _ = optimal_acyclic_throughput(inst)
    return Figure18Report(
        eps=eps,
        t_star=t_star,
        t_sigma1=t1,
        t_sigma1_expected=(2.0 / 3.0) * (1.0 + eps),
        t_sigma2=t2,
        t_sigma2_expected=0.75 - eps / 2.0,
        t_sigma3=t3,
        t_ac=t_ac,
        ratio=t_ac / t_star,
    )


# ----------------------------------------------------------------------
@dataclass
class Theorem63Report:
    """The I(alpha, k) family: ratio stuck near (1 + sqrt(41))/8."""

    alpha: float
    k: int
    n: int
    m: int
    t_star: float  #: always 1
    upper_bound: float  #: max(f_alpha(floor(1/a)), g_alpha(ceil(1/a)))
    measured_t_ac: float
    limit: float  #: (1 + sqrt(41))/8 ~ 0.92539


def theorem63_report(
    alpha: Fraction | None = None, ks: tuple[int, ...] = (1, 2, 4, 8)
) -> list[Theorem63Report]:
    if alpha is None:
        alpha = Fraction(THEOREM63_ALPHA).limit_denominator(40)
    rows = []
    for k in ks:
        inst = theorem63_instance(alpha, k)
        t_ac, _ = optimal_acyclic_throughput(inst)
        rows.append(
            Theorem63Report(
                alpha=float(alpha),
                k=k,
                n=inst.n,
                m=inst.m,
                t_star=cyclic_optimum(inst),
                upper_bound=theorem63_acyclic_upper_bound(float(alpha)),
                measured_t_ac=t_ac,
                limit=THEOREM63_LIMIT,
            )
        )
    return rows


# ----------------------------------------------------------------------
@dataclass
class Theorem61Report:
    """Open-only instances: measured worst ratio vs the 1 - 1/n bound."""

    n: int
    trials: int
    bound: float  #: 1 - 1/n
    worst_ratio: float
    mean_ratio: float


def theorem61_report(
    ns: tuple[int, ...] = (2, 5, 10, 50),
    trials: int = 200,
    seed: int = 0,
) -> list[Theorem61Report]:
    rng = np.random.default_rng(seed)
    rows = []
    for n in ns:
        worst, total = math.inf, 0.0
        for _ in range(trials):
            inst = random_instance(rng, n, 1.0, "Unif100")
            ratio = acyclic_open_optimum(inst) / cyclic_open_optimum(inst)
            worst = min(worst, ratio)
            total += ratio
        rows.append(
            Theorem61Report(
                n=n,
                trials=trials,
                bound=open_only_ratio_bound(n),
                worst_ratio=worst,
                mean_ratio=total / trials,
            )
        )
    return rows
