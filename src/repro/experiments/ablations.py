"""Ablation studies for the design choices called out in DESIGN.md.

These go beyond the paper's published evaluation: each ablation isolates
one design decision of the system and quantifies what it buys.

* :func:`greedy_vs_exhaustive` — Algorithm 2 + bisection against brute
  force over all ``C(n+m, m)`` orders (LP per order).  Certifies the
  optimality claim of Lemma 4.5 empirically on random instances.
* :func:`packing_degree_ablation` — the Lemma 4.6 FIFO packing against an
  LP solution of the same order: the LP reaches the same throughput but
  with much larger degrees, which is the reason the paper bothers with
  the packing argument at all.
* :func:`omega_quality` — how much throughput the search-free
  ``omega1/omega2`` words give up against the optimal word, per
  heterogeneity level.
* :func:`baseline_comparison` — the paper's overlays against source-star,
  single random tree and SplitStream-style striping.
* :func:`cyclic_gain` — what the cyclic construction (Theorem 5.2) buys
  over the best acyclic scheme on open-only instances (bounded by
  ``1/(1 - 1/n)``, Theorem 6.1).
* :func:`repair_tolerance_ablation` — the incremental planner's
  degradation tolerance swept on a steady-churn trace: how much
  optimality a looser tolerance trades for fewer full rebuilds.
* :func:`estimation_ablation` — the same steady-churn trace replayed
  with controllers planning on oracle vs *measured* bandwidths
  (``estimation="online"``) at several probe budgets: what the
  measurement loop costs end to end, churn included (the flow-level
  probe-budget x noise sweep lives in
  :mod:`repro.analysis.estimation_gap`).
* :func:`service_ablation` — control-plane request traces replayed
  under incremental re-arbitration vs the cold-solve control arm:
  per-request admission latency, throughput, and what each mutation
  disrupts (:mod:`repro.analysis.service`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.acyclic_guarded import (
    acyclic_guarded_scheme,
    optimal_acyclic_throughput,
    scheme_from_word,
)
from ..algorithms.baselines import (
    multi_tree_scheme,
    random_tree_scheme,
    source_star_scheme,
)
from ..algorithms.cyclic_open import cyclic_open_scheme
from ..algorithms.exact import exhaustive_acyclic_throughput
from ..core.bounds import acyclic_open_optimum, cyclic_open_optimum, cyclic_optimum
from ..core.instance import Instance
from ..core.scheme import BroadcastScheme
from ..core.throughput import scheme_throughput
from ..core.word_catalog import best_omega_throughput
from ..core.words import word_to_order
from ..instances.generators import random_instance

__all__ = [
    "greedy_vs_exhaustive",
    "PackingAblation",
    "packing_degree_ablation",
    "omega_quality",
    "BaselineRow",
    "baseline_comparison",
    "CyclicGainRow",
    "cyclic_gain",
    "SourceSensitivityRow",
    "source_sensitivity",
    "BackendRow",
    "simulation_backend_ablation",
    "RepairToleranceRow",
    "repair_tolerance_ablation",
    "EstimationRow",
    "estimation_ablation",
    "SessionsRow",
    "sessions_ablation",
    "ServiceRow",
    "service_ablation",
]


def greedy_vs_exhaustive(
    trials: int = 40,
    max_receivers: int = 7,
    seed: int = 7,
) -> float:
    """Worst relative error of the dichotomic-greedy ``T*_ac`` vs brute force.

    Returns ``max |greedy - exhaustive| / exhaustive`` over random small
    instances (expected: bisection precision, ~1e-12).
    """
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(trials):
        size = int(rng.integers(2, max_receivers + 1))
        inst = random_instance(rng, size, float(rng.uniform(0.2, 0.9)), "Unif100")
        t_greedy, _ = optimal_acyclic_throughput(inst)
        t_exact, _ = exhaustive_acyclic_throughput(inst)
        if t_exact > 0:
            worst = max(worst, abs(t_greedy - t_exact) / t_exact)
    return worst


@dataclass
class PackingAblation:
    """FIFO packing vs LP edge assignment at the same (order, throughput)."""

    throughput_fifo: float
    throughput_lp: float
    max_excess_degree_fifo: int  #: max over nodes of o_i - ceil(b_i/T)
    max_excess_degree_lp: int
    edges_fifo: int
    edges_lp: int


def _lp_scheme_for_order(
    instance: Instance, word: str, throughput: float
) -> BroadcastScheme:
    """An LP-optimal rate assignment for a fixed order (dense degrees).

    Re-solves the order LP and reads off the rate variables; no attempt is
    made to sparsify, which is precisely the point of the ablation.
    """
    from scipy.optimize import linprog

    order = word_to_order(instance, word)
    L = len(order)
    edges = [
        (k, l)
        for k in range(L)
        for l in range(k + 1, L)
        if instance.can_send(order[k], order[l])
    ]
    nvar = len(edges)
    # Feasibility LP at fixed T: minimize total rate (a mild sparsifier
    # that is still far denser than the FIFO packing).
    obj = np.ones(nvar)
    rows, rhs = [], []
    for l in range(1, L):
        row = np.zeros(nvar)
        for e, (_, kl) in enumerate(edges):
            if kl == l:
                row[e] = -1.0
        rows.append(row)
        rhs.append(-throughput)
    for k in range(L):
        row = np.zeros(nvar)
        for e, (kk, _) in enumerate(edges):
            if kk == k:
                row[e] = 1.0
        rows.append(row)
        rhs.append(instance.bandwidth(order[k]))
    res = linprog(
        obj,
        A_ub=np.vstack(rows),
        b_ub=np.array(rhs),
        bounds=[(0, None)] * nvar,
        method="highs",
    )
    if not res.success:
        raise ValueError("order LP infeasible at the requested throughput")
    scheme = BroadcastScheme.for_instance(instance)
    for e, (k, l) in enumerate(edges):
        if res.x[e] > 1e-9:
            scheme.add_rate(order[k], order[l], float(res.x[e]))
    return scheme


def _max_excess_degree(
    instance: Instance, scheme: BroadcastScheme, throughput: float
) -> int:
    from ..core.numerics import safe_ceil_div

    worst = 0
    for i in range(instance.num_nodes):
        bound = safe_ceil_div(instance.bandwidth(i), throughput)
        worst = max(worst, scheme.outdegree(i) - bound)
    return worst


def packing_degree_ablation(
    size: int = 40, open_prob: float = 0.6, seed: int = 11
) -> PackingAblation:
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, size, open_prob, "Unif100")
    t_ac, word = optimal_acyclic_throughput(inst)
    target = t_ac * (1 - 1e-9)
    fifo = scheme_from_word(inst, word, target)
    lp = _lp_scheme_for_order(inst, word, target)
    return PackingAblation(
        throughput_fifo=scheme_throughput(fifo, inst),
        throughput_lp=scheme_throughput(lp, inst),
        max_excess_degree_fifo=_max_excess_degree(inst, fifo, target),
        max_excess_degree_lp=_max_excess_degree(inst, lp, target),
        edges_fifo=fifo.num_edges,
        edges_lp=lp.num_edges,
    )


def omega_quality(
    sizes: tuple[int, ...] = (10, 30, 100),
    distributions: tuple[str, ...] = ("Unif100", "Power2"),
    reps: int = 30,
    seed: int = 3,
) -> list[tuple[str, int, float]]:
    """Mean ``best_omega / T*_ac`` per (distribution, size)."""
    rng = np.random.default_rng(seed)
    rows = []
    for dist in distributions:
        for size in sizes:
            vals = []
            for _ in range(reps):
                inst = random_instance(rng, size, 0.5, dist)
                t_ac, _ = optimal_acyclic_throughput(inst)
                if t_ac > 0:
                    vals.append(best_omega_throughput(inst) / t_ac)
            rows.append((dist, size, sum(vals) / len(vals)))
    return rows


@dataclass
class BaselineRow:
    name: str
    throughput: float
    fraction_of_optimal: float
    max_outdegree: int


def baseline_comparison(
    size: int = 30, open_prob: float = 0.7, seed: int = 5
) -> list[BaselineRow]:
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, size, open_prob, "PLab")
    t_star = cyclic_optimum(inst)
    rows = []
    sol = acyclic_guarded_scheme(inst)
    entries = [
        ("paper acyclic (Thm 4.1)", sol.scheme),
        ("source star", source_star_scheme(inst)),
        ("random tree", random_tree_scheme(inst, seed=seed)),
        ("multi-tree k=4", multi_tree_scheme(inst, 4, seed=seed)),
    ]
    for name, scheme in entries:
        scheme.validate(inst)
        t = scheme_throughput(scheme, inst)
        rows.append(
            BaselineRow(
                name=name,
                throughput=t,
                fraction_of_optimal=t / t_star if t_star > 0 else 1.0,
                max_outdegree=max(scheme.outdegrees()),
            )
        )
    return rows


@dataclass
class SourceSensitivityRow:
    """Acyclic/cyclic ratio as a function of source over-provisioning."""

    source_factor: float  #: b0 = factor * saturating fixed point
    mean_ratio: float  #: mean T*_ac / T*
    min_ratio: float


def source_sensitivity(
    factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 3.0, 10.0),
    size: int = 40,
    open_prob: float = 0.5,
    reps: int = 30,
    seed: int = 19,
) -> list[SourceSensitivityRow]:
    """How the Appendix XII protocol's choice of ``b0 = T*`` matters.

    The paper saturates the source (``b0`` equal to the optimal cyclic
    throughput) "to concentrate on difficult instances".  This ablation
    sweeps the over/under-provisioning factor: a starved source
    (``factor < 1``) makes the source term bind and the acyclic/cyclic
    gap closes (both equal ``b0``-ish); a lavish source trivializes the
    instance too.  The protocol's ``factor = 1`` sits at (or near) the
    hardest point — justifying the paper's choice.
    """
    import numpy as np

    from ..instances.generators import DISTRIBUTIONS, saturating_source_bw

    rng = np.random.default_rng(seed)
    sampler = DISTRIBUTIONS["Unif100"]
    rows = []
    base_draws = []
    for _ in range(reps):
        bws = sampler(rng, size)
        is_open = rng.random(size) < open_prob
        opens = tuple(bws[is_open])
        guardeds = tuple(bws[~is_open])
        base_draws.append(
            (opens, guardeds, saturating_source_bw(opens, guardeds))
        )
    for factor in factors:
        ratios = []
        for opens, guardeds, b0_sat in base_draws:
            inst = Instance(b0_sat * factor, opens, guardeds)
            t_star = cyclic_optimum(inst)
            if t_star <= 0:
                continue
            t_ac, _ = optimal_acyclic_throughput(inst)
            ratios.append(t_ac / t_star)
        rows.append(
            SourceSensitivityRow(
                source_factor=factor,
                mean_ratio=sum(ratios) / len(ratios),
                min_ratio=min(ratios),
            )
        )
    return rows


@dataclass
class CyclicGainRow:
    n: int
    acyclic: float
    cyclic: float
    gain: float  #: cyclic / acyclic (>= 1, -> 1 as n grows per Thm 6.1)


def cyclic_gain(
    ns: tuple[int, ...] = (2, 3, 5, 10, 30),
    reps: int = 25,
    seed: int = 13,
) -> list[CyclicGainRow]:
    rng = np.random.default_rng(seed)
    rows = []
    for n in ns:
        gains = []
        ac_total = cy_total = 0.0
        for _ in range(reps):
            inst = random_instance(rng, n, 1.0, "Unif100")
            t_ac = acyclic_open_optimum(inst)
            t_cy = cyclic_open_optimum(inst)
            scheme = cyclic_open_scheme(inst)
            scheme.validate(inst)
            ac_total += t_ac
            cy_total += t_cy
            gains.append(t_cy / t_ac if t_ac > 0 else 1.0)
        rows.append(
            CyclicGainRow(
                n=n,
                acyclic=ac_total / reps,
                cyclic=cy_total / reps,
                gain=sum(gains) / len(gains),
            )
        )
    return rows


@dataclass
class BackendRow:
    """One simulation backend validated against one overlay."""

    backend: str
    efficiency: float  #: worst-receiver goodput / injection rate
    wall_seconds: float
    speedup: float  #: reference wall time / this backend's wall time


def simulation_backend_ablation(
    size: int = 40,
    open_prob: float = 0.5,
    slots: int = 200,
    seed: int = 17,
) -> list[BackendRow]:
    """Validate one Theorem 4.1 overlay with every simulation backend.

    The reference backend is the behavioral baseline; the vectorized and
    arborescence-sharded backends must deliver the same worst-receiver
    efficiency (up to slotting noise) while spending less wall clock —
    the ablation quantifies both on a mid-size swarm.  See
    :mod:`repro.simulation.backends` for what each backend does.
    """
    import time

    from ..simulation import backend_names, simulate_packet_broadcast

    rng = np.random.default_rng(seed)
    inst = random_instance(rng, size, open_prob, "Unif100")
    sol = acyclic_guarded_scheme(inst)
    rate = sol.throughput * (1.0 - 1e-9)
    rows = []
    for backend in backend_names():
        started = time.perf_counter()
        res = simulate_packet_broadcast(
            inst,
            sol.scheme,
            rate,
            slots=slots,
            packets_per_unit=2.0 / rate,
            seed=seed,
            backend=backend,
        )
        rows.append(
            BackendRow(
                backend=backend,
                efficiency=res.efficiency(),
                wall_seconds=time.perf_counter() - started,
                speedup=1.0,
            )
        )
    baseline = next(r for r in rows if r.backend == "reference").wall_seconds
    for row in rows:
        row.speedup = baseline / row.wall_seconds if row.wall_seconds > 0 else 1.0
    return rows


@dataclass
class RepairToleranceRow:
    """One tolerance setting of the incremental planner on steady churn."""

    tolerance: float
    rebuilds: int  #: full optimizations (initial build + fallbacks)
    repairs: int  #: incremental deltas applied
    fallbacks: int  #: repair attempts that fell back to a rebuild
    mean_optimality: float  #: slot-weighted delivered-vs-``T*_ac``
    plan_seconds: float  #: total planner wall time


def repair_tolerance_ablation(
    tolerances: tuple[float, ...] = (0.0, 0.05, 0.1, 0.25),
    size: int = 24,
    horizon: int = 300,
    seed: int = 29,
) -> list[RepairToleranceRow]:
    """Sweep the incremental planner's degradation tolerance.

    One steady-churn trace replayed per tolerance under the
    ``incremental`` controller.  ``tolerance = 0`` degenerates to the
    reactive baseline (any rate below the Lemma 5.1 bound of the current
    members forces a rebuild); loosening it trades optimality, bounded
    by the tolerance itself, for strictly fewer dichotomic searches.
    """
    from ..planning import PlanCache
    from ..runtime import IncrementalController, RuntimeEngine, SteadyChurn

    spec = SteadyChurn(
        size=size, horizon=horizon, join_rate=0.03, leave_rate=0.03
    )
    rows = []
    for tolerance in tolerances:
        run = spec.build(seed, name="steady-churn")
        engine = RuntimeEngine(
            run.platform,
            run.events,
            run.horizon,
            seed=seed,
            cache=PlanCache(),  # fresh memo: plan costs stay comparable
            sim_backend="auto",
            repair_tolerance=tolerance,
        )
        result = engine.run(IncrementalController())
        rows.append(
            RepairToleranceRow(
                tolerance=tolerance,
                rebuilds=result.rebuilds,
                repairs=result.repairs,
                fallbacks=result.repair_fallbacks,
                mean_optimality=result.mean_optimality_fraction,
                plan_seconds=result.plan_seconds,
            )
        )
    return rows


@dataclass
class EstimationRow:
    """One bandwidth-feed setting of the runtime loop on steady churn."""

    estimation: str  #: ``"oracle"`` or ``"online"``
    probes_per_node: float  #: probe budget (0 for the oracle row)
    mean_optimality: float  #: slot-weighted delivered-vs-``T*_ac``
    mean_delivered: float  #: slot-weighted delivered-vs-planned
    probes: int  #: total probes the run paid for
    #: Slot-weighted mean of per-epoch median estimation errors
    #: (0.0 for the oracle row).
    est_error: float


def estimation_ablation(
    budgets: tuple[float, ...] = (8.0, 4.0, 1.0),
    size: int = 20,
    horizon: int = 240,
    seed: int = 31,
    noise_sigma: float = 0.1,
) -> list[EstimationRow]:
    """Oracle vs estimated planning through the full runtime loop.

    One steady-churn trace replayed under the reactive controller: once
    with oracle bandwidths, then with the measurement loop at each probe
    budget.  Same engine seed throughout, and probes never touch the
    simulation RNG, so every difference is estimation error — the gap
    vs the oracle row is the end-to-end (churn included) analogue of the
    flow-level sweep in
    :func:`repro.analysis.estimation_gap.estimation_gap_experiment`.
    """
    from ..planning import PlanCache
    from ..runtime import ReactiveController, RuntimeEngine, SteadyChurn

    spec = SteadyChurn(
        size=size, horizon=horizon, join_rate=0.02, leave_rate=0.02
    )
    rows = []
    settings = [("oracle", 0.0)] + [("online", b) for b in budgets]
    for estimation, budget in settings:
        run = spec.build(seed, name="steady-churn")
        engine = RuntimeEngine(
            run.platform,
            run.events,
            run.horizon,
            seed=seed,
            cache=PlanCache(),  # fresh memo: estimated instances never repeat
            sim_backend="auto",
            estimation=estimation,
            probes_per_node=budget,
            noise_sigma=noise_sigma,
        )
        result = engine.run(ReactiveController())
        rows.append(
            EstimationRow(
                estimation=estimation,
                probes_per_node=budget,
                mean_optimality=result.mean_optimality_fraction,
                mean_delivered=result.mean_delivered_fraction,
                probes=result.probes,
                est_error=result.mean_estimation_error or 0.0,
            )
        )
    return rows


@dataclass(frozen=True)
class SessionsRow:
    """One broker policy's outcome on a contended multi-tenant fleet."""

    broker: str
    num_sessions: int
    admitted: int
    aggregate: float  #: sum of admitted sessions' mean delivered rates
    ceiling_sum: float  #: sum of admitted sessions' min(demand, solo bound)
    fairness: float  #: Jain index over ceiling-normalized session rates
    worst_session: float  #: lowest admitted session mean rate
    rearbitrations: int


def sessions_ablation(
    num_sessions: int = 3,
    size: int = 24,
    horizon: int = 240,
    seed: int = 7,
    overlap: float = 0.5,
) -> list[SessionsRow]:
    """Capacity-broker policies on one contended multi-tenant trace.

    The same fleet — one steady-churn swarm shared by ``num_sessions``
    channels with heavily overlapped membership and a *heterogeneous*
    demand spread (each session demands a different fraction of its solo
    Lemma 5.1 bound) — replayed under every registered broker.  The
    demand spread is what separates the policies: ``equal`` strands
    capacity at demand-capped sessions, ``proportional`` weighs claims
    by demand, and ``waterfill`` hands exactly the needed share to
    capped sessions and the surplus to best-effort ones.
    """
    from dataclasses import replace

    from ..runtime import SteadyChurn
    from ..sessions import (
        FleetEngine,
        broker_names,
        lemma51_bound,
        make_fleet,
    )

    spec = SteadyChurn(
        size=size, horizon=horizon, join_rate=0.02, leave_rate=0.02
    )
    demand_fractions = (0.35, 0.7, float("inf"))

    def build_fleet():
        # A FleetEngine run consumes its shared platform (events are
        # applied in place), so every broker gets a fresh build —
        # make_fleet is a pure function of its arguments.
        base = make_fleet(spec, num_sessions, seed, overlap=overlap)
        kinds = {i: s.kind for i, s in base.platform.nodes.items() if s.alive}
        bandwidths = {
            i: s.bandwidth for i, s in base.platform.nodes.items() if s.alive
        }
        sessions = []
        for k, sp in enumerate(base.sessions):
            solo = lemma51_bound(
                sp.source_bw,
                float("inf"),
                tuple(n for n in sp.members if n in bandwidths),
                kinds,
                bandwidths,
            )
            fraction = demand_fractions[k % len(demand_fractions)]
            demand = (
                float("inf")
                if fraction == float("inf") or not np.isfinite(solo)
                else max(fraction * solo, 1e-9)
            )
            sessions.append(replace(sp, demand=demand))
        return replace(base, sessions=tuple(sessions))

    rows = []
    for broker in broker_names():
        result = FleetEngine.from_fleet(build_fleet(), broker=broker).run()
        rows.append(
            SessionsRow(
                broker=broker,
                num_sessions=num_sessions,
                admitted=len(result.admitted),
                aggregate=result.aggregate_goodput,
                ceiling_sum=result.bound_sum,
                fairness=result.fairness,
                worst_session=result.worst_session_goodput,
                rearbitrations=result.rearbitrations,
            )
        )
    return rows


@dataclass(frozen=True)
class ServiceRow:
    """One planning regime's service levels on one request trace."""

    trace: str
    broker: str
    planning: str
    latency_p50_ms: float
    latency_p99_ms: float
    requests_per_sec: float
    builds: int
    repairs: int
    keeps: int
    preemption_disruption: float  #: nan when the trace never preempts
    migration_goodput: float  #: nan when the trace never migrates away
    p50_speedup: float  #: cold-solve p50 / this regime's p50 (1.0 for full)


def service_ablation(
    num_sessions: int = 3,
    size: int = 240,
    horizon: int = 240,
    seed: int = 7,
    overlap: float = 0.3,
) -> list[ServiceRow]:
    """Control-plane request traces, incremental vs cold-solve.

    Three registered traces against one shared fleet, each replayed
    under both planning regimes of the
    :class:`~repro.service.plane.ControlPlane`: ``mixed`` (starts,
    migrations, priority changes and stops interleaved), ``roaming``
    (one channel repeatedly swapping members drawn from a shared pool
    — the pure cost of *small* mutations), and ``priority-storm`` (the
    preemption column; brokered ``proportional`` so priority actually
    moves capacity).  The speedup column is the cold-solve regime's
    per-request p50 over the row's own — what change tracking buys the
    admission path.  The contrast is the point: roaming mutations stay
    inside one arbitration component, so incremental planning skips
    every untouched session; a priority storm moves *every* session's
    grants, so there is nothing to skip and the regimes converge
    (the scale-up story lives in ``benchmarks/test_bench_service.py``).
    """
    from ..analysis.service import service_experiment
    from ..runtime import SteadyChurn

    spec = SteadyChurn(
        size=size, horizon=horizon, join_rate=0.02, leave_rate=0.02
    )
    rows = []
    for trace, broker in (
        ("mixed", "waterfill"),
        ("roaming", "equal"),
        ("priority-storm", "proportional"),
    ):
        reports = service_experiment(
            spec,
            num_sessions,
            seed,
            trace=trace,
            overlap=overlap,
            broker=broker,
            validate_migration=(trace == "mixed"),
        )
        full_p50 = next(
            (r.latency_p50_ms for r in reports if r.planning == "full"),
            float("nan"),
        )
        for rep in reports:
            rows.append(
                ServiceRow(
                    trace=trace,
                    broker=broker,
                    planning=rep.planning,
                    latency_p50_ms=rep.latency_p50_ms,
                    latency_p99_ms=rep.latency_p99_ms,
                    requests_per_sec=rep.requests_per_sec,
                    builds=rep.builds,
                    repairs=rep.repairs,
                    keeps=rep.keeps,
                    preemption_disruption=rep.preemption_disruption,
                    migration_goodput=rep.migration_goodput,
                    p50_speedup=(
                        full_p50 / rep.latency_p50_ms
                        if rep.latency_p50_ms > 0
                        else float("nan")
                    ),
                )
            )
    return rows
