"""One experiment module per table/figure of the paper (see DESIGN.md).

* :mod:`~repro.experiments.table1` — Algorithm 2 trace (Table I);
* :mod:`~repro.experiments.figure7` — tight homogeneous worst-case grid;
* :mod:`~repro.experiments.figure19` — average-case random-instance sweep;
* :mod:`~repro.experiments.worstcase` — Figures 1/6/18, Theorems 6.1/6.3;
* :mod:`~repro.experiments.ablations` — design-choice ablations;
* :mod:`~repro.experiments.report` — plain-text rendering of all of them.
"""

from .ablations import (
    baseline_comparison,
    cyclic_gain,
    greedy_vs_exhaustive,
    omega_quality,
    packing_degree_ablation,
    source_sensitivity,
)
from .common import Stats, format_table, full_scale, summarize
from .figure7 import Figure7Config, Figure7Result, cell_worst_ratio, run_figure7
from .figure19 import CellResult, Figure19Config, Figure19Result, run_figure19
from .table1 import (
    Table1Result,
    render_table1,
    run_table1,
    table1_matches_paper,
)
from .worstcase import (
    figure1_report,
    figure6_report,
    figure18_report,
    theorem61_report,
    theorem63_report,
)

__all__ = [
    "run_table1",
    "table1_matches_paper",
    "render_table1",
    "Table1Result",
    "run_figure7",
    "cell_worst_ratio",
    "Figure7Config",
    "Figure7Result",
    "run_figure19",
    "Figure19Config",
    "Figure19Result",
    "CellResult",
    "figure1_report",
    "figure6_report",
    "figure18_report",
    "theorem61_report",
    "theorem63_report",
    "greedy_vs_exhaustive",
    "packing_degree_ablation",
    "omega_quality",
    "baseline_comparison",
    "cyclic_gain",
    "source_sensitivity",
    "full_scale",
    "format_table",
    "summarize",
    "Stats",
]
