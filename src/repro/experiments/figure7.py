"""Figure 7 — worst-case ``T*_ac / T*`` over tight homogeneous instances.

The paper exhaustively explores tight homogeneous instances for
``n, m in [0, 100]`` and plots the worst ratio per ``(n, m)`` cell.  The
observations the reproduction must recover:

* the ratio never goes below the ``5/7 ~= 0.714`` floor (Theorem 6.2) —
  and *hits* it on a small instance (``n = 1, m = 2``, cf. Figure 18);
* along the band ``m ~= alpha n`` with ``alpha = (sqrt(41)-3)/8 ~= 0.425``
  the ratio stays near ``(1 + sqrt(41))/8 ~= 0.925`` even for large
  ``n, m`` (Theorem 6.3);
* outside a few small instances the ratio exceeds ``0.8``.

A tight homogeneous instance for a cell ``(n, m)`` is parametrized by
``delta in [max(0, 1-m), n]`` (see
:func:`repro.instances.families.tight_homogeneous_instance`); the cell
value is the *minimum* ratio over a ``delta`` grid (the paper's
"all possible tight and homogeneous instances").

Default grid: ``n, m <= 40`` with stride 2 and 9 delta samples (seconds
of CPU); ``REPRO_FULL=1`` runs the full 100 x 100 x dense-delta sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..algorithms.acyclic_guarded import optimal_acyclic_throughput
from ..core.bounds import FIVE_SEVENTHS, THEOREM63_ALPHA, THEOREM63_LIMIT
from ..core.bounds import cyclic_optimum
from ..instances.families import tight_homogeneous_instance
from .common import full_scale

__all__ = [
    "Figure7Config",
    "Figure7Result",
    "run_figure7",
    "cell_worst_ratio",
    "render_heatmap",
    "to_csv",
]


@dataclass(frozen=True)
class Figure7Config:
    """Sweep configuration (defaults: reduced; paper scale via REPRO_FULL)."""

    max_n: int = 40
    max_m: int = 40
    stride: int = 2
    delta_samples: int = 9
    refine_rounds: int = 3

    @classmethod
    def from_env(cls) -> "Figure7Config":
        if full_scale():
            return cls(max_n=100, max_m=100, stride=1, delta_samples=21)
        return cls()

    def n_values(self) -> list[int]:
        return list(range(1, self.max_n + 1, self.stride))

    def m_values(self) -> list[int]:
        return list(range(0, self.max_m + 1, self.stride))


def _cell_ratio(n: int, m: int, delta: float) -> float:
    inst = tight_homogeneous_instance(n, m, delta)
    t_star = cyclic_optimum(inst)
    t_ac, _ = optimal_acyclic_throughput(inst)
    return t_ac / t_star


def cell_worst_ratio(
    n: int, m: int, delta_samples: int = 9, refine_rounds: int = 3
) -> float:
    """Worst ``T*_ac / T*`` over the delta-parametrized cell ``(n, m)``.

    ``T* = 1`` by construction (tight instances), so the ratio is just the
    dichotomic-search optimum.  ``m = 0`` has a single instance
    (``delta = n``); otherwise ``delta`` spans ``[max(0, 1 - m), n]`` and
    the minimum over the grid is sharpened by ``refine_rounds`` of local
    grid refinement around the argmin (the exact worst case can sit at a
    fractional delta: e.g. cell ``(1, 2)`` attains 5/7 at
    ``delta = 1/7``, the Figure 18 instance).
    """
    if m == 0:
        return _cell_ratio(n, m, float(n))
    lo = max(0.0, 1.0 - m)
    hi = float(n)
    if hi <= lo:
        return _cell_ratio(n, m, hi)
    samples = max(delta_samples, 3)
    deltas = [lo + (hi - lo) * k / (samples - 1) for k in range(samples)]
    values = [_cell_ratio(n, m, d) for d in deltas]
    for _ in range(refine_rounds):
        i = min(range(len(values)), key=values.__getitem__)
        new_lo = deltas[max(i - 1, 0)]
        new_hi = deltas[min(i + 1, len(deltas) - 1)]
        if new_hi - new_lo <= 1e-9:
            break
        deltas = [
            new_lo + (new_hi - new_lo) * k / (samples - 1)
            for k in range(samples)
        ]
        values = [_cell_ratio(n, m, d) for d in deltas]
    return min(values)


@dataclass
class Figure7Result:
    """The ratio grid plus the headline observations."""

    config: Figure7Config
    n_values: list[int]
    m_values: list[int]
    #: ratio[i][j] = worst ratio at (n_values[i], m_values[j])
    ratios: list[list[float]] = field(default_factory=list)

    @property
    def global_min(self) -> float:
        return min(min(row) for row in self.ratios)

    @property
    def global_argmin(self) -> tuple[int, int]:
        best, arg = float("inf"), (0, 0)
        for i, n in enumerate(self.n_values):
            for j, m in enumerate(self.m_values):
                if self.ratios[i][j] < best:
                    best, arg = self.ratios[i][j], (n, m)
        return arg

    def fraction_above(self, threshold: float) -> float:
        cells = [r for row in self.ratios for r in row]
        return sum(1 for r in cells if r >= threshold) / len(cells)

    def band_range(self, min_n: int | None = None) -> tuple[float, float]:
        """(min, max) ratio along the Theorem 6.3 band ``m ~= 0.425 n``.

        The paper observes (e.g. n=100, m=42) that the ratio remains
        bounded away from 1 near ``(1+sqrt41)/8 ~= 0.925`` *even for large
        n and m*; small cells are excluded by ``min_n`` (default: half the
        grid) since every small cell sits below the limit anyway.
        """
        if min_n is None:
            min_n = self.config.max_n // 2
        lo, hi = float("inf"), 0.0
        for i, n in enumerate(self.n_values):
            if n < min_n:
                continue
            target_m = THEOREM63_ALPHA * n
            j = min(
                range(len(self.m_values)),
                key=lambda jj: abs(self.m_values[jj] - target_m),
            )
            lo = min(lo, self.ratios[i][j])
            hi = max(hi, self.ratios[i][j])
        return lo, hi

    def respects_five_sevenths(self, slack: float = 1e-6) -> bool:
        return self.global_min >= FIVE_SEVENTHS - slack

    def summary(self) -> dict:
        n_arg, m_arg = self.global_argmin
        band_lo, band_hi = self.band_range()
        return {
            "global_min": self.global_min,
            "argmin": (n_arg, m_arg),
            "five_sevenths_floor": FIVE_SEVENTHS,
            "floor_respected": self.respects_five_sevenths(),
            "band_min": band_lo,
            "band_max": band_hi,
            "theorem63_limit": THEOREM63_LIMIT,
            "fraction_above_0.8": self.fraction_above(0.8),
        }


def render_heatmap(result: "Figure7Result") -> str:
    """ASCII rendering of the ratio grid (rows: n, columns: m).

    Each cell prints one digit: ``9`` for ratio >= 0.95 down to ``0`` for
    ratio < 0.5 (0.05-wide buckets), mirroring the paper's 3-D surface as
    a character map.  The 5/7 floor shows up as '4'-ish cells, the
    Theorem 6.3 band as a diagonal stripe of '8's through the '9' field.
    """
    lines = [
        "ratio deciles: 9 >= 0.95 > 8 >= 0.90 > ... > 0 < 0.55  "
        "(rows n, cols m)"
    ]
    header = "      m=" + " ".join(f"{m:>2d}"[-1] for m in result.m_values)
    lines.append(header)
    for i, n in enumerate(result.n_values):
        cells = []
        for ratio in result.ratios[i]:
            bucket = int((ratio - 0.5) / 0.05)
            cells.append(str(min(max(bucket, 0), 9)))
        lines.append(f"n={n:>4d}  " + " ".join(cells))
    return "\n".join(lines)


def to_csv(result: "Figure7Result") -> str:
    """CSV export (n, m, worst_ratio) of the grid, for external plotting."""
    rows = ["n,m,worst_ratio"]
    for i, n in enumerate(result.n_values):
        for j, m in enumerate(result.m_values):
            rows.append(f"{n},{m},{result.ratios[i][j]:.9f}")
    return "\n".join(rows) + "\n"


def run_figure7(config: Optional[Figure7Config] = None) -> Figure7Result:
    """Sweep the (n, m) grid and collect worst ratios per cell."""
    config = config if config is not None else Figure7Config.from_env()
    result = Figure7Result(
        config=config,
        n_values=config.n_values(),
        m_values=config.m_values(),
    )
    for n in result.n_values:
        row = [
            cell_worst_ratio(n, m, config.delta_samples, config.refine_rounds)
            for m in result.m_values
        ]
        result.ratios.append(row)
    return result
