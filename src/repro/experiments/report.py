"""Plain-text reporting of every experiment (the benchmark harness prints
these, and EXPERIMENTS.md is written from the same renderings)."""

from __future__ import annotations

from ..core.bounds import FIVE_SEVENTHS, THEOREM63_LIMIT
from .ablations import (
    BaselineRow,
    CyclicGainRow,
    PackingAblation,
)
from .common import format_table
from .figure7 import Figure7Result
from .figure19 import Figure19Result
from .table1 import render_table1
from .worstcase import (
    Figure1Report,
    Figure6Report,
    Figure18Report,
    Theorem61Report,
    Theorem63Report,
)

__all__ = [
    "render_table1",
    "render_figure1",
    "render_figure6",
    "render_figure18",
    "render_theorem63",
    "render_theorem61",
    "render_figure7",
    "render_figure19",
    "render_baselines",
    "render_cyclic_gain",
    "render_packing",
]


def render_figure1(rep: Figure1Report) -> str:
    rows = [
        ["T* (Lemma 5.1 closed form)", 4.4, rep.t_star_closed_form],
        ["T* (multi-flow LP)", 4.4, rep.t_star_lp],
        ["T*_ac (dichotomic search)", 4.0, rep.t_ac_search],
        ["T*_ac scheme throughput", 4.0, rep.t_ac_scheme],
    ]
    table = format_table(["quantity", "paper", "measured"], rows)
    return (
        f"{table}\n"
        f"greedy word: {rep.greedy_word!r} (paper: 'gogog', Figure 5)\n"
        f"scheme outdegrees: {rep.scheme_degrees}"
    )


def render_figure6(rows: list[Figure6Report]) -> str:
    table = format_table(
        ["m", "T*", "scheme T", "src degree", "ceil(b0/T*)", "T*_ac"],
        [
            [
                r.m,
                r.t_star,
                r.scheme_throughput,
                r.source_degree,
                r.source_degree_lower_bound,
                r.acyclic_throughput,
            ]
            for r in rows
        ],
    )
    return (
        "Figure 6 family: optimal cyclic schemes need source degree m while "
        "ceil(b0/T*) = 1\n" + table
    )


def render_figure18(rep: Figure18Report) -> str:
    rows = [
        ["T* (Lemma 5.1)", 1.0, rep.t_star],
        ["T*_ac(ogg) = (2/3)(1+eps)", rep.t_sigma1_expected, rep.t_sigma1],
        ["T*_ac(gog) = 3/4 - eps/2", rep.t_sigma2_expected, rep.t_sigma2],
        ["T*_ac(ggo) (dominated)", float("nan"), rep.t_sigma3],
        ["T*_ac overall", max(rep.t_sigma1_expected, rep.t_sigma2_expected),
         rep.t_ac],
        ["ratio T*_ac/T*", FIVE_SEVENTHS if abs(rep.eps - 1 / 14) < 1e-12
         else float("nan"), rep.ratio],
    ]
    return (
        f"Figure 18 instance at eps = {rep.eps:g} (5/7 = {FIVE_SEVENTHS:.6f})\n"
        + format_table(["quantity", "expected", "measured"], rows,
                       float_fmt="{:.6f}")
    )


def render_theorem63(rows: list[Theorem63Report]) -> str:
    table = format_table(
        ["alpha", "k", "n", "m", "T*", "upper bound", "measured T*_ac"],
        [
            [r.alpha, r.k, r.n, r.m, r.t_star, r.upper_bound, r.measured_t_ac]
            for r in rows
        ],
    )
    return (
        f"Theorem 6.3 family (limit (1+sqrt41)/8 = {THEOREM63_LIMIT:.6f})\n"
        + table
    )


def render_theorem61(rows: list[Theorem61Report]) -> str:
    table = format_table(
        ["n", "trials", "bound 1-1/n", "worst ratio", "mean ratio"],
        [[r.n, r.trials, r.bound, r.worst_ratio, r.mean_ratio] for r in rows],
    )
    return "Theorem 6.1 (open only): measured ratios vs 1 - 1/n\n" + table


def render_figure7(result: Figure7Result) -> str:
    s = result.summary()
    lines = [
        "Figure 7: worst-case T*_ac/T* on tight homogeneous instances "
        f"(grid n<= {result.config.max_n}, m <= {result.config.max_m}, "
        f"stride {result.config.stride})",
        f"  global min ratio      : {s['global_min']:.6f} at (n, m) = "
        f"{s['argmin']}",
        f"  5/7 floor             : {s['five_sevenths_floor']:.6f}  "
        f"respected = {s['floor_respected']}",
        f"  Thm 6.3 band (large n): [{s['band_min']:.6f}, {s['band_max']:.6f}]"
        f"  (limit {s['theorem63_limit']:.6f})",
        f"  fraction of cells >0.8: {s['fraction_above_0.8']:.3f}",
    ]
    return "\n".join(lines)


def render_figure19(result: Figure19Result) -> str:
    headers = ["dist", "p", "n", "mean opt", "mean omega", "mean proof",
               "q05 opt"]
    rows = [c.as_row() for c in result.cells]
    summary = [
        f"worst mean optimal ratio : "
        f"{result.worst_mean_optimal_ratio():.4f} (paper: >= ~0.95)",
        f"max mean (black - blue)  : {result.worst_mean_omega_gap():.4f} "
        f"(paper: tiny)",
        "mean (black - red) by n  : "
        + ", ".join(
            f"n={s}: {g:.4f}"
            for s, g in result.proof_word_gap_by_size().items()
        ),
    ]
    return (
        "Figure 19: ratio over optimal cyclic throughput\n"
        + format_table(headers, rows)
        + "\n"
        + "\n".join(summary)
    )


def render_baselines(rows: list[BaselineRow]) -> str:
    return "Overlay baselines vs the paper's construction\n" + format_table(
        ["overlay", "throughput", "fraction of T*", "max outdegree"],
        [[r.name, r.throughput, r.fraction_of_optimal, r.max_outdegree]
         for r in rows],
    )


def render_cyclic_gain(rows: list[CyclicGainRow]) -> str:
    return (
        "Cyclic gain over acyclic on open-only instances (Thm 6.1: <= "
        "1/(1-1/n))\n"
        + format_table(
            ["n", "mean T*_ac", "mean T*", "mean gain"],
            [[r.n, r.acyclic, r.cyclic, r.gain] for r in rows],
        )
    )


def render_packing(rep: PackingAblation) -> str:
    rows = [
        ["throughput", rep.throughput_fifo, rep.throughput_lp],
        ["max degree excess over ceil(b/T)", rep.max_excess_degree_fifo,
         rep.max_excess_degree_lp],
        ["edges", rep.edges_fifo, rep.edges_lp],
    ]
    return (
        "Lemma 4.6 FIFO packing vs LP rate assignment (same order & rate)\n"
        + format_table(["metric", "FIFO packing", "LP"], rows)
    )
