"""Shared infrastructure for the experiment modules.

Every experiment in :mod:`repro.experiments` is a pure function from an
explicit configuration (sizes, seeds) to a plain-data result object, so
benchmarks, tests and examples all drive the same code.  Paper-scale runs
are opt-in through the environment:

* ``REPRO_FULL=1`` — run every sweep at the sizes used in the paper
  (Figure 7's 100x100 grid, Figure 19's 1000 instances x n=1000);
  default sizes are reduced for CI latency but preserve every qualitative
  conclusion.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "full_scale",
    "Stats",
    "summarize",
    "format_table",
    "geometric_span",
]


def full_scale() -> bool:
    """Whether paper-scale experiment sizes were requested."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "no")


@dataclass(frozen=True)
class Stats:
    """Order statistics of a sample (quantiles computed by interpolation)."""

    count: int
    mean: float
    minimum: float
    q05: float
    median: float
    q95: float
    maximum: float

    def row(self) -> tuple[float, float, float, float, float]:
        return (self.mean, self.q05, self.median, self.q95, self.minimum)


def _quantile(sorted_vals: Sequence[float], q: float) -> float:
    if not sorted_vals:
        raise ValueError("empty sample")
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    pos = q * (len(sorted_vals) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1 - frac) + sorted_vals[hi] * frac


def summarize(values: Iterable[float]) -> Stats:
    vals = sorted(values)
    if not vals:
        raise ValueError("cannot summarize an empty sample")
    return Stats(
        count=len(vals),
        mean=math.fsum(vals) / len(vals),
        minimum=vals[0],
        q05=_quantile(vals, 0.05),
        median=_quantile(vals, 0.5),
        q95=_quantile(vals, 0.95),
        maximum=vals[-1],
    )


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = "{:.4f}",
) -> str:
    """Fixed-width ASCII table used by the benchmark reports."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def geometric_span(start: int, stop: int, points: int) -> list[int]:
    """Roughly geometric integer grid from ``start`` to ``stop`` inclusive."""
    if points < 2 or start >= stop:
        return [start]
    out = []
    for k in range(points):
        val = start * (stop / start) ** (k / (points - 1))
        out.append(int(round(val)))
    dedup: list[int] = []
    for v in out:
        if not dedup or v > dedup[-1]:
            dedup.append(v)
    return dedup
