"""Table I — execution trace of Algorithm 2 on the Figure 1 instance.

The paper tabulates the Lemma 4.4 pools ``O(pi)``, ``G(pi)``, ``W(pi)``
after each prefix of the greedy run at ``T = 4`` on the instance
``b0 = 6``, open ``(5, 5)``, guarded ``(4, 1, 1)``::

    pi      eps   g    go   gog  gogo  gogog
    O(pi)   6     2    7    3    5     1
    G(pi)   0     4    0    1    0     1
    W(pi)   0     0    0    0    3     3

(the paper prints prefixes as square/circle glyphs; ``g``/``o`` here).
All quantities are dyadic rationals, so the float reproduction must match
*exactly*; :func:`table1_matches_paper` asserts that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.greedy import greedy_test
from ..instances.families import figure1_instance
from .common import format_table

__all__ = [
    "TARGET_RATE",
    "PAPER_PREFIXES",
    "PAPER_O",
    "PAPER_G",
    "PAPER_W",
    "Table1Result",
    "run_table1",
    "table1_matches_paper",
    "render_table1",
]

#: Throughput at which the paper traces Algorithm 2.
TARGET_RATE = 4.0

#: The six prefixes of the greedy word (empty prefix first).
PAPER_PREFIXES = ("", "g", "go", "gog", "gogo", "gogog")
PAPER_O = (6.0, 2.0, 7.0, 3.0, 5.0, 1.0)
PAPER_G = (0.0, 4.0, 0.0, 1.0, 0.0, 1.0)
PAPER_W = (0.0, 0.0, 0.0, 0.0, 3.0, 3.0)


@dataclass
class Table1Result:
    """Measured trace (same layout as the paper's table)."""

    prefixes: tuple[str, ...]
    open_avail: tuple[float, ...]
    guarded_avail: tuple[float, ...]
    open_to_open: tuple[float, ...]
    word: str
    feasible: bool


def run_table1() -> Table1Result:
    """Re-run Algorithm 2 with tracing on the Figure 1 instance."""
    inst = figure1_instance()
    res = greedy_test(inst, TARGET_RATE, trace=True)
    states = res.states()
    prefixes = tuple(res.word[:k] for k in range(len(states)))
    return Table1Result(
        prefixes=prefixes,
        open_avail=tuple(s.open_avail for s in states),
        guarded_avail=tuple(s.guarded_avail for s in states),
        open_to_open=tuple(s.open_to_open for s in states),
        word=res.word,
        feasible=res.feasible,
    )


def table1_matches_paper(result: Table1Result | None = None) -> bool:
    """Exact comparison against the paper's published values."""
    result = result if result is not None else run_table1()
    return (
        result.feasible
        and result.prefixes == PAPER_PREFIXES
        and result.open_avail == PAPER_O
        and result.guarded_avail == PAPER_G
        and result.open_to_open == PAPER_W
    )


def render_table1(result: Table1Result | None = None) -> str:
    """ASCII rendering with a paper-vs-measured verdict line."""
    result = result if result is not None else run_table1()
    headers = ["", *(p if p else "eps" for p in result.prefixes)]
    rows = [
        ["O(pi)", *result.open_avail],
        ["G(pi)", *result.guarded_avail],
        ["W(pi)", *result.open_to_open],
    ]
    verdict = (
        "matches the paper exactly"
        if table1_matches_paper(result)
        else "MISMATCH vs the paper"
    )
    return (
        format_table(headers, rows, float_fmt="{:g}")
        + f"\nTable I trace ({verdict}); word = {result.word!r}"
    )
