"""Figure 19 — average-case acyclic/cyclic ratio on random instances.

Protocol (Appendix XII): for each bandwidth distribution in
``{LN1, LN2, Power1, Power2, Unif100, PLab}``, each open-node probability
``p in {0.1, 0.5, 0.7, 0.9}`` and each instance size ``n``, sample
instances whose source bandwidth saturates ``b0 = T*``, then record —
normalized by the optimal cyclic throughput ``T*`` (closed form,
Lemma 5.1) —

* **black** (boxplots in the paper): the optimal acyclic throughput
  ``T*_ac`` (dichotomic search over Algorithm 2);
* **blue**: the best of the two balanced words,
  ``max(T*_ac(omega1), T*_ac(omega2))``;
* **red**: the single word used by Theorem 6.2's case analysis
  (:func:`repro.core.word_catalog.proof_word`).

Expected shape (paper's conclusions): every mean ratio is ~>= 0.95;
Power1/Power2 with many open nodes are slightly hardest at small sizes;
blue is nearly indistinguishable from black (identical for large
instances); red lags visibly on small instances only.

Defaults are reduced (sizes {10, 30, 100}, 60 reps, p in {0.1, 0.5,
0.9}); ``REPRO_FULL=1`` switches to the paper's grid (sizes {10, 100,
1000}, 1000 reps, p in {0.1, 0.5, 0.7, 0.9}).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..algorithms.acyclic_guarded import optimal_acyclic_throughput
from ..core.bounds import cyclic_optimum
from ..core.word_catalog import best_omega_throughput, proof_word_throughput
from ..instances.generators import DISTRIBUTIONS, random_instance
from .common import Stats, full_scale, summarize

__all__ = [
    "Figure19Config",
    "CellResult",
    "Figure19Result",
    "run_figure19",
]

PAPER_DISTRIBUTIONS = ("LN1", "LN2", "Power1", "Power2", "Unif100", "PLab")


@dataclass(frozen=True)
class Figure19Config:
    distributions: tuple[str, ...] = PAPER_DISTRIBUTIONS
    open_probs: tuple[float, ...] = (0.1, 0.5, 0.9)
    sizes: tuple[int, ...] = (10, 30, 100)
    repetitions: int = 60
    seed: int = 20100419  # IPDPS 2010 vintage

    @classmethod
    def from_env(cls) -> "Figure19Config":
        if full_scale():
            return cls(
                open_probs=(0.1, 0.5, 0.7, 0.9),
                sizes=(10, 100, 1000),
                repetitions=1000,
            )
        return cls()


@dataclass
class CellResult:
    """One (distribution, p, size) cell: ratio samples and their stats."""

    distribution: str
    open_prob: float
    size: int
    optimal: Stats  #: T*_ac / T* (paper: black boxplots)
    best_omega: Stats  #: max(omega1, omega2) / T* (paper: blue)
    proof: Stats  #: proof word / T* (paper: red)

    def as_row(self) -> tuple:
        return (
            self.distribution,
            self.open_prob,
            self.size,
            self.optimal.mean,
            self.best_omega.mean,
            self.proof.mean,
            self.optimal.q05,
        )


@dataclass
class Figure19Result:
    config: Figure19Config
    cells: list[CellResult] = field(default_factory=list)

    def cell(self, distribution: str, p: float, size: int) -> CellResult:
        for c in self.cells:
            if (
                c.distribution == distribution
                and abs(c.open_prob - p) < 1e-12
                and c.size == size
            ):
                return c
        raise KeyError((distribution, p, size))

    # ---- headline checks mirrored from the paper's text ----------------
    def worst_mean_optimal_ratio(self) -> float:
        return min(c.optimal.mean for c in self.cells)

    def worst_mean_omega_gap(self) -> float:
        """Largest mean gap between blue and black (paper: tiny)."""
        return max(
            c.optimal.mean - c.best_omega.mean for c in self.cells
        )

    def proof_word_gap_by_size(self) -> dict[int, float]:
        """Mean (black - red) per size; shrinks as size grows."""
        gaps: dict[int, list[float]] = {}
        for c in self.cells:
            gaps.setdefault(c.size, []).append(
                c.optimal.mean - c.proof.mean
            )
        return {s: sum(v) / len(v) for s, v in sorted(gaps.items())}

    def to_csv(self) -> str:
        """CSV export (one row per cell) for external plotting."""
        rows = [
            "distribution,p,n,mean_optimal,q05_optimal,median_optimal,"
            "q95_optimal,mean_best_omega,mean_proof_word"
        ]
        for c in self.cells:
            rows.append(
                f"{c.distribution},{c.open_prob:g},{c.size},"
                f"{c.optimal.mean:.6f},{c.optimal.q05:.6f},"
                f"{c.optimal.median:.6f},{c.optimal.q95:.6f},"
                f"{c.best_omega.mean:.6f},{c.proof.mean:.6f}"
            )
        return "\n".join(rows) + "\n"


def _one_cell(
    distribution: str,
    open_prob: float,
    size: int,
    repetitions: int,
    rng: np.random.Generator,
) -> CellResult:
    opt_ratios: list[float] = []
    omega_ratios: list[float] = []
    proof_ratios: list[float] = []
    for _ in range(repetitions):
        inst = random_instance(rng, size, open_prob, distribution)
        t_star = cyclic_optimum(inst)
        if t_star <= 0.0:  # all-zero bandwidth draw; ratio is vacuous
            opt_ratios.append(1.0)
            omega_ratios.append(1.0)
            proof_ratios.append(1.0)
            continue
        t_ac, _ = optimal_acyclic_throughput(inst)
        opt_ratios.append(t_ac / t_star)
        omega_ratios.append(best_omega_throughput(inst) / t_star)
        proof_ratios.append(proof_word_throughput(inst) / t_star)
    return CellResult(
        distribution=distribution,
        open_prob=open_prob,
        size=size,
        optimal=summarize(opt_ratios),
        best_omega=summarize(omega_ratios),
        proof=summarize(proof_ratios),
    )


def run_figure19(config: Optional[Figure19Config] = None) -> Figure19Result:
    """Full sweep; deterministic given the config seed."""
    config = config if config is not None else Figure19Config.from_env()
    unknown = set(config.distributions) - set(DISTRIBUTIONS)
    if unknown:
        raise ValueError(f"unknown distributions: {sorted(unknown)}")
    result = Figure19Result(config=config)
    for d_idx, dist in enumerate(config.distributions):
        for p_idx, p in enumerate(config.open_probs):
            for s_idx, size in enumerate(config.sizes):
                # Independent, reproducible stream per cell.
                rng = np.random.default_rng(
                    (config.seed, d_idx, p_idx, s_idx)
                )
                result.cells.append(
                    _one_cell(dist, p, size, config.repetitions, rng)
                )
    return result
