"""Core model: instances, schemes, throughput, bounds, coding words."""

from .bounds import (
    FIVE_SEVENTHS,
    THEOREM63_ALPHA,
    THEOREM63_LIMIT,
    acyclic_open_optimum,
    cyclic_open_optimum,
    cyclic_optimum,
    f_alpha,
    g_alpha,
    open_only_ratio_bound,
    theorem63_acyclic_upper_bound,
)
from .exact_words import (
    exact_acyclic_optimum,
    exact_cyclic_optimum,
    exact_word_throughput,
    exact_word_throughput_for,
)
from .exceptions import (
    DecompositionError,
    EstimationError,
    InfeasibleThroughputError,
    InvalidInstanceError,
    InvalidSchemeError,
    ReproError,
)
from .instance import SOURCE, Instance, NodeKind
from .scheme import BroadcastScheme
from .throughput import (
    dag_throughput,
    maxflow_throughput,
    per_receiver_flows,
    scheme_throughput,
)
from .word_catalog import (
    best_omega_throughput,
    best_omega_word,
    omega1,
    omega2,
    proof_word,
    proof_word_throughput,
)
from .words import (
    GUARDED,
    OPEN,
    WordState,
    all_words,
    homogeneous_word_valid,
    is_valid_word,
    word_from_order,
    word_throughput,
    word_to_order,
    word_trace,
)

__all__ = [
    # instance / scheme / throughput
    "Instance",
    "NodeKind",
    "SOURCE",
    "BroadcastScheme",
    "scheme_throughput",
    "dag_throughput",
    "maxflow_throughput",
    "per_receiver_flows",
    # bounds
    "acyclic_open_optimum",
    "cyclic_optimum",
    "cyclic_open_optimum",
    "open_only_ratio_bound",
    "theorem63_acyclic_upper_bound",
    "f_alpha",
    "g_alpha",
    "FIVE_SEVENTHS",
    "THEOREM63_LIMIT",
    "THEOREM63_ALPHA",
    # words
    "OPEN",
    "GUARDED",
    "WordState",
    "word_trace",
    "is_valid_word",
    "word_throughput",
    "word_to_order",
    "word_from_order",
    "all_words",
    "homogeneous_word_valid",
    "exact_word_throughput",
    "exact_word_throughput_for",
    "exact_acyclic_optimum",
    "exact_cyclic_optimum",
    "omega1",
    "omega2",
    "proof_word",
    "best_omega_word",
    "best_omega_throughput",
    "proof_word_throughput",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "InvalidSchemeError",
    "InfeasibleThroughputError",
    "DecompositionError",
    "EstimationError",
]
