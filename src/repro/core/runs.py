"""Run-length (class, multiplicity) instances and collapsed schemes.

The paper's constructions never distinguish identical nodes: the Lemma 4.6
two-pool packing, the Algorithm 2 greedy oracle and the Lemma 5.1 rate
bounds all depend only on the *multiset* of bandwidths.  This module
exploits that for scale: a :class:`ClassRuns` stores an instance as sorted
``(bandwidth, multiplicity)`` runs, and a :class:`RunScheme` stores a
packed broadcast scheme as per-segment *feed records* (who supplied which
contiguous span of the demand line) instead of per-node edge dicts.

Both expand lazily:

* ``ClassRuns.to_instance()`` materializes the per-node
  :class:`~repro.core.instance.Instance` (cached);
* ``RunScheme.edge_arrays()`` expands feed records to ``(src, dst, rate)``
  numpy arrays in O(edges) vectorized work, and
  :class:`LazyExpandedScheme` wraps that as a real
  :class:`~repro.core.scheme.BroadcastScheme` whose adjacency dicts are
  only built on first structural access.

Aggregates (``open_sum`` …) are computed with ``math.fsum`` over the
expanded values: ``fsum`` is correctly rounded, so the result is
bit-identical to the per-node path no matter how the nodes are grouped —
the keystone of the collapsed-vs-full rate equivalence guarantee.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from .instance import Instance
from .numerics import ABS_TOL
from .scheme import BroadcastScheme

__all__ = [
    "ClassRuns",
    "SupplyBlock",
    "FeedPortion",
    "SegmentFeed",
    "RunScheme",
    "LazyExpandedScheme",
]

Run = Tuple[float, int]


def _normalize_runs(values: Iterable[Run]) -> tuple[Run, ...]:
    """Sort non-increasingly by bandwidth and merge equal-bandwidth runs."""
    cleaned: list[list[float | int]] = []
    for bw, count in values:
        bw = float(bw)
        count = int(count)
        if count < 0:
            raise ValueError(f"negative multiplicity {count}")
        if count == 0:
            continue
        if not math.isfinite(bw) or bw < 0.0:
            raise ValueError(f"bandwidths must be finite and >= 0, got {bw}")
        cleaned.append([bw, count])
    cleaned.sort(key=lambda r: -r[0])
    merged: list[list[float | int]] = []
    for bw, count in cleaned:
        if merged and merged[-1][0] == bw:
            merged[-1][1] += count
        else:
            merged.append([bw, count])
    return tuple((float(bw), int(count)) for bw, count in merged)


def _expand_values(runs: Sequence[Run]) -> Iterator[float]:
    for bw, count in runs:
        for _ in range(count):
            yield bw


def _runs_to_array(runs: Sequence[Run]) -> np.ndarray:
    if not runs:
        return np.empty(0, dtype=float)
    bws = np.array([r[0] for r in runs], dtype=float)
    counts = np.array([r[1] for r in runs], dtype=np.int64)
    return np.repeat(bws, counts)


@dataclass(frozen=True)
class ClassRuns:
    """A broadcast instance in run-length form.

    ``open_runs`` / ``guarded_runs`` are ``(bandwidth, multiplicity)``
    pairs, normalized to non-increasing bandwidth order with equal
    bandwidths merged — the canonical order of
    :class:`~repro.core.instance.Instance`, so run ``k`` covers a
    contiguous span of canonical node ids.  Hashable (usable as a
    :class:`~repro.planning.PlanCache` key).
    """

    source_bw: float
    open_runs: tuple[Run, ...] = ()
    guarded_runs: tuple[Run, ...] = ()

    def __post_init__(self) -> None:
        b0 = float(self.source_bw)
        if not math.isfinite(b0) or b0 < 0.0:
            raise ValueError(f"source bandwidth must be finite >= 0, got {b0}")
        object.__setattr__(self, "source_bw", b0)
        object.__setattr__(self, "open_runs", _normalize_runs(self.open_runs))
        object.__setattr__(
            self, "guarded_runs", _normalize_runs(self.guarded_runs)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_classes(
        cls,
        source_bw: float,
        classes: Iterable[tuple[str, float, int]],
    ) -> "ClassRuns":
        """Build from ``(kind, bandwidth, multiplicity)`` class specs.

        ``kind`` is ``"open"`` or ``"guarded"``.
        """
        opens: list[Run] = []
        guardeds: list[Run] = []
        for kind, bw, count in classes:
            if kind == "open":
                opens.append((bw, count))
            elif kind == "guarded":
                guardeds.append((bw, count))
            else:
                raise ValueError(f"unknown node kind {kind!r}")
        return cls(source_bw, tuple(opens), tuple(guardeds))

    @classmethod
    def from_instance(cls, instance: Instance) -> "ClassRuns":
        """Collapse an (already sorted) instance into runs."""
        return cls(
            instance.source_bw,
            tuple(
                (bw, len(list(g)))
                for bw, g in itertools.groupby(instance.open_bws)
            ),
            tuple(
                (bw, len(list(g)))
                for bw, g in itertools.groupby(instance.guarded_bws)
            ),
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return sum(c for _, c in self.open_runs)

    @property
    def m(self) -> int:
        return sum(c for _, c in self.guarded_runs)

    @property
    def num_receivers(self) -> int:
        return self.n + self.m

    @property
    def num_nodes(self) -> int:
        return 1 + self.num_receivers

    @property
    def num_classes(self) -> int:
        return len(self.open_runs) + len(self.guarded_runs)

    @property
    def open_sum(self) -> float:
        """``fsum`` of the expanded open bandwidths (bit-identical to
        :attr:`Instance.open_sum` — fsum is correctly rounded)."""
        return math.fsum(_expand_values(self.open_runs))

    @property
    def guarded_sum(self) -> float:
        return math.fsum(_expand_values(self.guarded_runs))

    def cyclic_optimum(self) -> float:
        """Lemma 5.1 closed form, bit-identical to
        :func:`repro.core.bounds.cyclic_optimum` on the expanded instance."""
        n, m = self.n, self.m
        if n + m == 0:
            return float("inf")
        bound = min(
            self.source_bw,
            (self.source_bw + self.open_sum + self.guarded_sum) / (n + m),
        )
        if m > 0:
            bound = min(bound, (self.source_bw + self.open_sum) / m)
        return bound

    # ------------------------------------------------------------------
    def open_array(self) -> np.ndarray:
        return _runs_to_array(self.open_runs)

    def guarded_array(self) -> np.ndarray:
        return _runs_to_array(self.guarded_runs)

    def to_instance(self) -> Instance:
        """Materialize the per-node instance (O(n + m); not cached —
        callers that need it repeatedly should keep a reference)."""
        return Instance(
            self.source_bw,
            tuple(float(v) for v in self.open_array()),
            tuple(float(v) for v in self.guarded_array()),
        )

    def scaled(self, factor: float) -> "ClassRuns":
        """All bandwidths multiplied by ``factor`` (diurnal epoch drift
        at class granularity: O(classes), not O(n))."""
        if not math.isfinite(factor) or factor < 0.0:
            raise ValueError(f"scale factor must be finite >= 0: {factor}")
        return ClassRuns(
            self.source_bw * factor,
            tuple((bw * factor, c) for bw, c in self.open_runs),
            tuple((bw * factor, c) for bw, c in self.guarded_runs),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClassRuns(b0={self.source_bw:g}, n={self.n} in "
            f"{len(self.open_runs)} runs, m={self.m} in "
            f"{len(self.guarded_runs)} runs)"
        )


# ----------------------------------------------------------------------
# Collapsed schemes: run-length feed records with lazy edge expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupplyBlock:
    """``count`` consecutive nodes starting at ``start`` supplying
    ``each`` rate apiece (in FIFO order along the demand line)."""

    start: int
    count: int
    each: float


@dataclass(frozen=True)
class FeedPortion:
    """A contiguous span of a segment's demand line served by ``blocks``.

    ``offset`` is where the span begins on the demand line (0 = start of
    the segment's first receiver).  Supply block boundaries beyond the
    segment's total demand are clamped at expansion time.
    """

    offset: float
    blocks: tuple[SupplyBlock, ...]


@dataclass(frozen=True)
class SegmentFeed:
    """Feed record for ``count`` consecutive receivers starting at node
    ``first``, each demanding ``rate``."""

    first: int
    count: int
    rate: float
    portions: tuple[FeedPortion, ...]


class RunScheme:
    """A packed broadcast scheme in run-length (feed record) form.

    Stores O(classes + word alternations) records instead of O(edges)
    dicts; :meth:`edge_arrays` expands to flat numpy edge arrays and
    :meth:`expand` to a full :class:`BroadcastScheme`.
    """

    __slots__ = ("num_nodes", "rate", "feeds")

    def __init__(
        self, num_nodes: int, rate: float, feeds: Sequence[SegmentFeed]
    ):
        self.num_nodes = int(num_nodes)
        self.rate = float(rate)
        self.feeds = tuple(feeds)

    # ------------------------------------------------------------------
    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand to ``(src, dst, rate)`` arrays.

        Per feed record, the demand line ``[0, count * rate)`` is cut at
        receiver boundaries ``k * rate`` and at cumulative supply
        boundaries; each resulting interval is one edge.  Fully
        vectorized: O(edges) with a handful of numpy calls per record.
        """
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        rates: list[np.ndarray] = []
        for feed in self.feeds:
            if feed.rate <= 0.0 or feed.count <= 0:
                continue
            demand_end = feed.count * feed.rate
            cuts = feed.rate * np.arange(feed.count + 1, dtype=float)
            for portion in feed.portions:
                if not portion.blocks:
                    continue
                node_ids = np.concatenate(
                    [
                        np.arange(b.start, b.start + b.count, dtype=np.int64)
                        for b in portion.blocks
                    ]
                )
                amounts = np.concatenate(
                    [np.full(b.count, b.each, dtype=float) for b in portion.blocks]
                )
                bounds = np.empty(node_ids.size + 1, dtype=float)
                bounds[0] = portion.offset
                np.add.accumulate(amounts, out=bounds[1:])
                bounds[1:] += portion.offset
                np.minimum(bounds, demand_end, out=bounds)
                lo_k = int(np.searchsorted(cuts, bounds[0], side="right"))
                hi_k = int(np.searchsorted(cuts, bounds[-1], side="left"))
                inner = cuts[lo_k:hi_k]
                events = np.concatenate([bounds, inner])
                events.sort(kind="mergesort")
                widths = np.diff(events)
                starts = events[:-1]
                keep = widths > ABS_TOL
                if not np.any(keep):
                    continue
                starts = starts[keep]
                widths = widths[keep]
                src_idx = np.searchsorted(bounds, starts, side="right") - 1
                np.clip(src_idx, 0, node_ids.size - 1, out=src_idx)
                dst_idx = np.searchsorted(cuts, starts, side="right") - 1
                np.clip(dst_idx, 0, feed.count - 1, out=dst_idx)
                edge_src = node_ids[src_idx]
                edge_dst = feed.first + dst_idx
                ok = edge_src != edge_dst
                if not np.all(ok):
                    # Self-overlaps can only be float dust at a shared
                    # boundary; anything wider means an infeasible pack.
                    bad = widths[~ok]
                    if np.any(bad > 1e-6 * max(1.0, feed.rate)):
                        raise ValueError(
                            "collapsed pack produced a self-feeding edge"
                        )
                    edge_src = edge_src[ok]
                    edge_dst = edge_dst[ok]
                    widths = widths[ok]
                srcs.append(edge_src)
                dsts.append(edge_dst)
                rates.append(widths)
        if not srcs:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=float)
        return (
            np.concatenate(srcs),
            np.concatenate(dsts),
            np.concatenate(rates),
        )

    @property
    def num_edges_estimate(self) -> int:
        """Upper bound on the expanded edge count (cheap, no expansion)."""
        total = 0
        for feed in self.feeds:
            total += feed.count
            for portion in feed.portions:
                total += sum(b.count for b in portion.blocks) + 1
        return total

    def expand(self) -> BroadcastScheme:
        """Materialize the full per-node :class:`BroadcastScheme`."""
        scheme = BroadcastScheme(self.num_nodes)
        out = scheme._out
        src, dst, rate = self.edge_arrays()
        for i, j, r in zip(src.tolist(), dst.tolist(), rate.tolist()):
            row = out[i]
            row[j] = row.get(j, 0.0) + r
        return scheme

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunScheme(nodes={self.num_nodes}, rate={self.rate:g}, "
            f"feeds={len(self.feeds)})"
        )


class LazyExpandedScheme(BroadcastScheme):
    """A :class:`BroadcastScheme` whose adjacency dicts are expanded from
    a :class:`RunScheme` on first structural access.

    ``num_nodes`` (and therefore engine plumbing that only sizes things)
    never triggers expansion; any per-edge query does.  Passes
    ``isinstance(..., BroadcastScheme)`` checks and supports the full
    scheme API after expansion.
    """

    __slots__ = ("_collapsed", "_expanded_out")

    def __init__(self, collapsed: RunScheme):
        # Deliberately skip BroadcastScheme.__init__: _out is shadowed by
        # the lazy property below.
        if collapsed.num_nodes <= 0:
            raise ValueError("a scheme needs at least the source node")
        self.num_nodes = collapsed.num_nodes
        self._collapsed = collapsed
        self._expanded_out = None

    @property
    def collapsed(self) -> RunScheme:
        return self._collapsed

    @property
    def is_expanded(self) -> bool:
        return self._expanded_out is not None

    @property
    def _out(self):
        if self._expanded_out is None:
            self._expanded_out = self._collapsed.expand()._out
        return self._expanded_out

    @_out.setter
    def _out(self, value):  # pragma: no cover - copy/deepcopy protocols
        self._expanded_out = value
