"""Named coding words from the paper's worst-case analysis (Section VI).

Theorem 6.2's proof exhibits two balanced interleavings of open and guarded
letters and shows that at least one of them always achieves throughput
``5/7 T*``:

* ``omega1(n, m)`` — one open letter, then its fair share of guarded
  letters: ``o g^{a_1} o g^{a_2} ... o g^{a_n}`` with
  ``a_i = floor(i m / n) - floor((i-1) m / n)``;
* ``omega2(n, m)`` — one guarded letter, then its fair share of open
  letters: ``g o^{b_1} g o^{b_2} ... g o^{b_m}`` with
  ``b_i = ceil(i n / m) - ceil((i-1) n / m)``.

For ``n = m`` these degenerate to the alternating words ``(og)^n`` and
``(go)^n`` (cf. Lemma 11.5).  The *proof word* is the one the case analysis
of Theorem 6.2 actually uses: ``omega1`` when the homogenized open
bandwidth is at least ``T*``, otherwise ``omega2``; Figure 19's red curves
plot its throughput.

All three are cheap O(n + m) constructions, which is why the paper
highlights them as practical: once nodes are sorted by bandwidth, a
distributed system can build these overlays with no further optimization.
"""

from __future__ import annotations

from .bounds import cyclic_optimum
from .instance import Instance
from .words import GUARDED, OPEN, word_throughput

__all__ = [
    "omega1",
    "omega2",
    "proof_word",
    "best_omega_word",
    "best_omega_throughput",
    "proof_word_throughput",
]


def omega1(n: int, m: int) -> str:
    """The word ``o g^{a_1} o g^{a_2} ... o g^{a_n}`` of Theorem 6.2.

    Guarded letters are spread as evenly as possible *after* open letters,
    so every guarded node is fed by the open bandwidth accumulated before
    it.  ``a_i = floor(i m / n) - floor((i-1) m / n)`` sums to ``m``.
    """
    if n < 0 or m < 0:
        raise ValueError("negative node counts")
    if n == 0:
        return GUARDED * m
    parts = []
    prev = 0
    for i in range(1, n + 1):
        cur = (i * m) // n
        parts.append(OPEN + GUARDED * (cur - prev))
        prev = cur
    return "".join(parts)


def omega2(n: int, m: int) -> str:
    """The word ``g o^{b_1} g o^{b_2} ... g o^{b_m}`` of Theorem 6.2.

    Open letters are spread as evenly as possible after guarded letters,
    front-loading guarded upload capacity.
    ``b_i = ceil(i n / m) - ceil((i-1) n / m)`` sums to ``n``.
    """
    if n < 0 or m < 0:
        raise ValueError("negative node counts")
    if m == 0:
        return OPEN * n
    parts = []
    prev = 0
    for i in range(1, m + 1):
        cur = -((-i * n) // m)  # ceil(i*n/m) with integer arithmetic
        parts.append(GUARDED + OPEN * (cur - prev))
        prev = cur
    return "".join(parts)


def proof_word(instance: Instance) -> str:
    """The word used by the case analysis proving Theorem 6.2.

    The proof reduces any instance to a tight homogeneous one
    (Lemma 11.1) with open bandwidth ``o = (O + b0 - T*) / n`` (each of the
    ``n`` open nodes takes an equal share of the open bandwidth left after
    the source's own injection) and then shows statement (5): if
    ``o >= T*`` the word ``omega1`` achieves ``5/7``, otherwise ``omega2``
    does.  We apply the same selection rule to the (possibly heterogeneous)
    input instance; Figure 19's red curves measure how much this
    no-search heuristic loses against picking the better of the two.
    """
    n, m = instance.n, instance.m
    if n == 0:
        return omega1(n, m)  # == omega2 == 'g'*m
    t_star = cyclic_optimum(instance)
    if t_star == float("inf"):
        return omega1(n, m)
    o_hom = (instance.open_sum + instance.source_bw - t_star) / n
    return omega1(n, m) if o_hom >= t_star else omega2(n, m)


def best_omega_word(instance: Instance) -> tuple[str, float]:
    """The better of ``omega1``/``omega2`` with its throughput.

    Figure 19's blue curves: ``max(T*_ac(omega1), T*_ac(omega2))``.
    """
    w1 = omega1(instance.n, instance.m)
    w2 = omega2(instance.n, instance.m)
    t1 = word_throughput(instance, w1)
    if w2 == w1:
        return w1, t1
    t2 = word_throughput(instance, w2)
    return (w1, t1) if t1 >= t2 else (w2, t2)


def best_omega_throughput(instance: Instance) -> float:
    """``max(T*_ac(omega1), T*_ac(omega2))`` (Figure 19, blue curves)."""
    return best_omega_word(instance)[1]


def proof_word_throughput(instance: Instance) -> float:
    """``T*_ac(proof word)`` (Figure 19, red curves)."""
    return word_throughput(instance, proof_word(instance))
