"""Broadcast schemes: weighted overlay networks with rate assignments.

A broadcast scheme (paper, Section II-D) is the output of the optimization
problem: a matrix ``c`` where ``c_ij`` is the rate at which node ``Ci``
sends data to node ``Cj``.  This module stores schemes sparsely
(adjacency dictionaries), and provides the model-constraint validators used
by every test in the suite:

* bandwidth constraint  ``sum_j c_ij <= b_i``,
* firewall constraint   ``c_ij = 0`` for guarded ``i`` *and* guarded ``j``,
* structural properties: outdegrees, acyclicity, topological order.

Rates within :data:`~repro.core.numerics.ABS_TOL` of zero are treated as
"no connection" — consistently with the paper's definition of the outdegree
``o_i = |{j : c_ij > 0}|``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Sequence

import numpy as np

from .exceptions import InvalidSchemeError
from .instance import Instance
from .numerics import ABS_TOL, fle, fpos, safe_ceil_div

__all__ = ["BroadcastScheme"]


class BroadcastScheme:
    """A sparse rate matrix ``c_ij`` over nodes ``0..num_nodes-1``.

    The class is deliberately independent of :class:`Instance` so that
    structural queries (degrees, acyclicity) need no bandwidth data; the
    model validators take the instance explicitly.
    """

    __slots__ = ("num_nodes", "_out")

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise InvalidSchemeError("a scheme needs at least the source node")
        self.num_nodes = num_nodes
        self._out: list[Dict[int, float]] = [dict() for _ in range(num_nodes)]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_instance(cls, instance: Instance) -> "BroadcastScheme":
        return cls(instance.num_nodes)

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Sequence[tuple[int, int, float]]
    ) -> "BroadcastScheme":
        scheme = cls(num_nodes)
        for i, j, rate in edges:
            scheme.add_rate(i, j, rate)
        return scheme

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "BroadcastScheme":
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidSchemeError("rate matrix must be square")
        scheme = cls(matrix.shape[0])
        for i, j in zip(*np.nonzero(matrix)):
            scheme.add_rate(int(i), int(j), float(matrix[i, j]))
        return scheme

    def copy(self) -> "BroadcastScheme":
        dup = BroadcastScheme(self.num_nodes)
        dup._out = [dict(row) for row in self._out]
        return dup

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_pair(self, i: int, j: int) -> None:
        if not 0 <= i < self.num_nodes or not 0 <= j < self.num_nodes:
            raise InvalidSchemeError(
                f"edge ({i},{j}) out of range for {self.num_nodes} nodes"
            )
        if i == j:
            raise InvalidSchemeError(f"self-loop rate on node {i}")

    def set_rate(self, i: int, j: int, rate: float) -> None:
        """Set ``c_ij`` to ``rate`` (dropping the edge when ~0)."""
        self._check_pair(i, j)
        if rate < -ABS_TOL:
            raise InvalidSchemeError(f"negative rate {rate} on edge ({i},{j})")
        if rate <= ABS_TOL:
            self._out[i].pop(j, None)
        else:
            self._out[i][j] = float(rate)

    def add_rate(self, i: int, j: int, delta: float) -> None:
        """Increase ``c_ij`` by ``delta`` (may be negative; clamps at ~0)."""
        self._check_pair(i, j)
        new = self._out[i].get(j, 0.0) + float(delta)
        if new < -ABS_TOL:
            raise InvalidSchemeError(
                f"edge ({i},{j}) rate driven negative ({new})"
            )
        if new <= ABS_TOL:
            self._out[i].pop(j, None)
        else:
            self._out[i][j] = new

    def remove_edge(self, i: int, j: int) -> None:
        self._check_pair(i, j)
        self._out[i].pop(j, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rate(self, i: int, j: int) -> float:
        """Current ``c_ij`` (0.0 when no edge)."""
        self._check_pair(i, j)
        return self._out[i].get(j, 0.0)

    def successors(self, i: int) -> Dict[int, float]:
        """Read-only view of ``{j: c_ij}`` for node ``i``."""
        return dict(self._out[i])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        for i, row in enumerate(self._out):
            for j, rate in row.items():
                yield i, j, rate

    @property
    def num_edges(self) -> int:
        return sum(len(row) for row in self._out)

    def out_rate(self, i: int) -> float:
        """Total outgoing rate ``sum_j c_ij`` of node ``i``."""
        return math.fsum(self._out[i].values())

    def in_rate(self, j: int) -> float:
        """Total incoming rate ``sum_i c_ij`` of node ``j``."""
        return math.fsum(row.get(j, 0.0) for row in self._out)

    def in_rates(self) -> list[float]:
        """All incoming rates in one O(E) pass."""
        acc = [0.0] * self.num_nodes
        for row in self._out:
            for j, rate in row.items():
                acc[j] += rate
        return acc

    def outdegree(self, i: int) -> int:
        """``o_i = |{j : c_ij > 0}|`` — connections node ``i`` must handle."""
        return len(self._out[i])

    def outdegrees(self) -> list[int]:
        return [len(row) for row in self._out]

    def indegree(self, j: int) -> int:
        return sum(1 for row in self._out if j in row)

    def as_matrix(self) -> np.ndarray:
        mat = np.zeros((self.num_nodes, self.num_nodes))
        for i, j, rate in self.edges():
            mat[i, j] = rate
        return mat

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topological_order(self) -> Optional[list[int]]:
        """A topological order of the communication graph, or None if cyclic.

        Isolated nodes are included (after their would-be predecessors), so
        the result is always a permutation of ``0..num_nodes-1`` when the
        graph is acyclic.
        """
        indeg = [0] * self.num_nodes
        for row in self._out:
            for j in row:
                indeg[j] += 1
        stack = [v for v in range(self.num_nodes) if indeg[v] == 0]
        order: list[int] = []
        while stack:
            u = stack.pop()
            order.append(u)
            for j in self._out[u]:
                indeg[j] -= 1
                if indeg[j] == 0:
                    stack.append(j)
        if len(order) != self.num_nodes:
            return None
        return order

    def is_acyclic(self) -> bool:
        """Whether the communication graph is a DAG (Section II-D)."""
        return self.topological_order() is not None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        instance: Instance,
        *,
        require_acyclic: bool = False,
        tol: float = ABS_TOL,
    ) -> None:
        """Check all model constraints; raise :class:`InvalidSchemeError`.

        Parameters
        ----------
        instance:
            The instance supplying bandwidths and node classes.
        require_acyclic:
            Additionally require the communication graph to be a DAG.
        tol:
            Absolute slack allowed on the bandwidth constraints (float
            accumulation in the constructions stays far below the default).
        """
        if self.num_nodes != instance.num_nodes:
            raise InvalidSchemeError(
                f"scheme has {self.num_nodes} nodes, instance "
                f"{instance.num_nodes}"
            )
        for i in range(self.num_nodes):
            total = self.out_rate(i)
            cap = instance.bandwidth(i)
            if not fle(total, cap, abs_=tol):
                raise InvalidSchemeError(
                    f"node {i} sends {total} > bandwidth {cap}"
                )
        for i, j, rate in self.edges():
            if rate < -tol:
                raise InvalidSchemeError(f"negative rate {rate} on ({i},{j})")
            if instance.is_guarded(i) and instance.is_guarded(j) and fpos(rate):
                raise InvalidSchemeError(
                    f"firewall violation: guarded {i} -> guarded {j} at rate "
                    f"{rate}"
                )
        if require_acyclic and not self.is_acyclic():
            raise InvalidSchemeError("scheme was required to be acyclic")

    def check_degree_bounds(
        self,
        instance: Instance,
        throughput: float,
        additive: int,
        *,
        nodes: Optional[Sequence[int]] = None,
        floor: int = 0,
    ) -> list[tuple[int, int, int]]:
        """Return degree-bound violations ``(node, degree, bound)``.

        The paper states every guarantee as ``o_i <= ceil(b_i / T) + d``
        (possibly with an absolute floor, e.g. Theorem 5.2's
        ``max(ceil(b_i/T) + 2, 4)``).  An empty result means the bound
        holds for every requested node.
        """
        report = []
        check = range(self.num_nodes) if nodes is None else nodes
        for i in check:
            bound = max(
                safe_ceil_div(instance.bandwidth(i), throughput) + additive,
                floor,
            )
            deg = self.outdegree(i)
            if deg > bound:
                report.append((i, deg, bound))
        return report

    # ------------------------------------------------------------------
    # Serialization (experiments persist overlays for replay/inspection)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly form: node count plus an explicit edge list."""
        return {
            "num_nodes": self.num_nodes,
            "edges": [[i, j, rate] for i, j, rate in sorted(self.edges())],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BroadcastScheme":
        scheme = cls(int(data["num_nodes"]))
        for i, j, rate in data["edges"]:
            scheme.set_rate(int(i), int(j), float(rate))
        return scheme

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "BroadcastScheme":
        import json

        return cls.from_dict(json.loads(payload))

    def isomorphic_rates(self, other: "BroadcastScheme", tol: float = 1e-9) -> bool:
        """Whether both schemes carry the same rates on the same edges."""
        if self.num_nodes != other.num_nodes:
            return False
        mine = {(i, j): r for i, j, r in self.edges()}
        theirs = {(i, j): r for i, j, r in other.edges()}
        if mine.keys() != theirs.keys():
            return False
        return all(abs(mine[k] - theirs[k]) <= tol for k in mine)

    # ------------------------------------------------------------------
    def relabel(self, perm: Sequence[int]) -> "BroadcastScheme":
        """Return a copy with node ``k`` renamed to ``perm[k]``.

        Used to map schemes computed on a canonical (sorted) instance back
        to the caller's original node numbering
        (see :meth:`Instance.from_unsorted`).
        """
        if sorted(perm) != list(range(self.num_nodes)):
            raise InvalidSchemeError("relabel permutation is not a bijection")
        out = BroadcastScheme(self.num_nodes)
        for i, j, rate in self.edges():
            out.set_rate(perm[i], perm[j], rate)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BroadcastScheme(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"acyclic={self.is_acyclic()})"
        )

    def format_edges(self, instance: Optional[Instance] = None) -> str:
        """Human-readable edge listing used by the examples."""
        lines = []
        for i, j, rate in sorted(self.edges()):
            tag = ""
            if instance is not None:
                ki = "G" if instance.is_guarded(i) else "O"
                kj = "G" if instance.is_guarded(j) else "O"
                tag = f"  [{ki}->{kj}]"
            lines.append(f"  C{i} -> C{j}: {rate:.6g}{tag}")
        return "\n".join(lines) if lines else "  (empty scheme)"
