"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything coming out of the reproduction code with a single
``except`` clause while still letting genuine programming errors
(``TypeError``, ``ValueError`` raised by numpy, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidInstanceError(ReproError):
    """An :class:`~repro.core.instance.Instance` violates a model invariant.

    Raised for negative bandwidths, NaN/inf bandwidths, or malformed node
    classifications.
    """


class InvalidSchemeError(ReproError):
    """A broadcast scheme violates a model constraint.

    Covers negative rates, bandwidth-constraint violations
    (``sum_j c_ij > b_i``), firewall violations (guarded -> guarded edges),
    self-loops and edges out of range.
    """


class InfeasibleThroughputError(ReproError):
    """A construction was asked for a throughput above the feasible optimum.

    Raised by scheme builders (Algorithm 1, Algorithm 2-based packing, the
    cyclic construction of Theorem 5.2) when the requested target rate
    exceeds the relevant upper bound for the instance.
    """


class DecompositionError(ReproError):
    """Broadcast-tree decomposition failed.

    The greedy arborescence extraction of :mod:`repro.flows.arborescence`
    only guarantees success for acyclic schemes in which every non-source
    node receives at exactly the scheme rate; this error signals a scheme
    outside that class (or a numerically degenerate one).
    """


class EstimationError(ReproError):
    """Last-mile parameter estimation could not produce a usable model."""
