"""Throughput evaluation of broadcast schemes.

The paper defines (Section II-D)

    ``T(c) = min_{i in 1..n+m} maxflow(C0 -> Ci)``

over the weighted digraph described by the rate matrix ``c``.  This module
evaluates that quantity:

* :func:`scheme_throughput` — the general evaluator.  For acyclic schemes it
  uses an O(E) shortcut; for cyclic schemes it runs one max-flow
  (:mod:`repro.flows.dinic`) per receiver on a shared residual network.

* DAG shortcut (used heavily by the experiment sweeps): on a DAG,
  ``min_v maxflow(C0 -> v) = min_v inrate(v)``.

  *Proof.* ``maxflow(C0 -> v) <= inrate(v)`` because the in-edges of ``v``
  form a cut.  Conversely, for any ``C0``-``v`` cut ``(S, V\\S)``, let ``u``
  be the topologically first node of ``V\\S``: every in-neighbour of ``u``
  precedes it topologically, hence lies in ``S``, so the cut capacity is at
  least ``inrate(u) >= min_w inrate(w)``.  By max-flow/min-cut,
  ``maxflow(C0 -> v) >= min_w inrate(w)`` for every ``v``; taking minima on
  both sides gives equality.

  The shortcut is property-tested against Dinic in ``tests/test_throughput``.
"""

from __future__ import annotations

from typing import Optional

from ..flows.dinic import FlowNetwork
from .instance import Instance, SOURCE
from .scheme import BroadcastScheme

__all__ = [
    "scheme_throughput",
    "per_receiver_flows",
    "dag_throughput",
    "maxflow_throughput",
]


def _network(scheme: BroadcastScheme) -> FlowNetwork:
    net = FlowNetwork(scheme.num_nodes)
    for i, j, rate in scheme.edges():
        net.add_edge(i, j, rate)
    return net


def dag_throughput(scheme: BroadcastScheme) -> float:
    """Min in-rate over receivers; equals the throughput for DAG schemes."""
    if scheme.num_nodes == 1:
        return float("inf")
    rates = scheme.in_rates()
    return min(rates[1:])


def maxflow_throughput(
    scheme: BroadcastScheme, *, source: int = SOURCE
) -> float:
    """Throughput by direct definition: min over receivers of max-flow.

    One :class:`~repro.flows.dinic.FlowNetwork` is built and reset between
    sinks, avoiding num_receivers adjacency rebuilds.
    """
    if scheme.num_nodes == 1:
        return float("inf")
    net = _network(scheme)
    best = float("inf")
    for sink in range(scheme.num_nodes):
        if sink == source:
            continue
        value = net.max_flow(source, sink)
        net.reset()
        if value < best:
            best = value
            if best == 0.0:
                break
    return best


def per_receiver_flows(
    scheme: BroadcastScheme, *, source: int = SOURCE
) -> list[float]:
    """``maxflow(C0 -> Ci)`` for every node (source entry is ``inf``)."""
    net = _network(scheme)
    flows = []
    for sink in range(scheme.num_nodes):
        if sink == source:
            flows.append(float("inf"))
            continue
        flows.append(net.max_flow(source, sink))
        net.reset()
    return flows


def scheme_throughput(
    scheme: BroadcastScheme,
    instance: Optional[Instance] = None,
    *,
    method: str = "auto",
) -> float:
    """Evaluate the throughput ``T(c)`` of a scheme.

    Parameters
    ----------
    scheme:
        The rate matrix.
    instance:
        Optional; when provided, the scheme's node count is checked against
        the instance (the throughput itself only depends on the scheme).
    method:
        ``"auto"`` (DAG shortcut when acyclic, max-flow otherwise),
        ``"maxflow"`` (force the definition), or ``"inrate"`` (force the
        DAG shortcut; raises on cyclic schemes).
    """
    if instance is not None and instance.num_nodes != scheme.num_nodes:
        raise ValueError(
            f"scheme has {scheme.num_nodes} nodes but instance has "
            f"{instance.num_nodes}"
        )
    if method == "maxflow":
        return maxflow_throughput(scheme)
    acyclic = scheme.is_acyclic()
    if method == "inrate":
        if not acyclic:
            raise ValueError("in-rate throughput is only valid on DAG schemes")
        return dag_throughput(scheme)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")
    return dag_throughput(scheme) if acyclic else maxflow_throughput(scheme)
