"""Exact rational word throughputs (parametric Lemma 4.4 recursion).

The float bisection of :func:`repro.core.words.word_throughput` computes
``T*_ac(pi)`` to 1e-13 relative precision.  For a reproduction of a
*theory* paper one sometimes wants the exact rational: Figure 18's ratio
is exactly ``5/7``, the Figure 1 instance has ``T*_ac = 4``, and Theorem
6.3's plateau is exactly ``37/40`` for the fraction ``alpha = 17/40``.
This module computes such values exactly.

Method: run the Lemma 4.4 recursion *parametrically in T* over
``fractions.Fraction``.  The pools are piecewise-linear functions of the
rate::

    O(T) = O_a + O_b T        with O_b <= 0  (O is non-increasing in T)
    G(T) = G_a + G_b T        with G_b <= 0

maintained as a list of segments of a shrinking interval ``[0, T_max]``.

* appending a guarded letter requires ``O(T) - T >= 0`` — an affine
  function with slope ``O_b - 1 < 0``, so the constraint clips the
  feasible region to a prefix interval; the update is
  ``O' = O - T``, ``G' = G + b_next``;
* appending an open letter first splits segments at the root of
  ``G(T) - T`` (slope ``G_b - 1 < 0``: one crossing), applies the two
  branches of ``max(0, T - G)``, and clips on ``O + G - T >= 0``.

All constraint functions are continuous and strictly decreasing in ``T``
across segment boundaries (this is the monotonicity that justifies the
float bisection), so clipping always yields ``[0, T*]`` and the answer is
the surviving region's right endpoint — an exact rational.

The segment count grows by at most one per open letter, so the whole
computation is ``O((n+m)^2)`` Fraction operations.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from .instance import Instance
from .words import GUARDED, OPEN

__all__ = [
    "exact_word_throughput",
    "exact_word_throughput_for",
    "exact_acyclic_optimum",
    "exact_cyclic_optimum",
]


def _to_fraction(value) -> Fraction:
    """Exact conversion (floats are dyadic rationals, so this is lossless)."""
    if isinstance(value, Fraction):
        return value
    return Fraction(value)


class _Segment:
    """One affine piece of the pools over ``[lo, hi]``."""

    __slots__ = ("lo", "hi", "o_a", "o_b", "g_a", "g_b")

    def __init__(self, lo, hi, o_a, o_b, g_a, g_b):
        self.lo, self.hi = lo, hi
        self.o_a, self.o_b = o_a, o_b
        self.g_a, self.g_b = g_a, g_b

    def clip_nonneg(self, a: Fraction, b: Fraction) -> "_Segment | None":
        """Clip to where ``a + b T >= 0`` with ``b < 0`` (prefix interval)."""
        if a + b * self.lo < 0:
            return None
        if a + b * self.hi >= 0:
            return self
        root = -a / b
        return _Segment(self.lo, root, self.o_a, self.o_b, self.g_a, self.g_b)


def exact_word_throughput(
    source_bw,
    open_bws: Sequence,
    guarded_bws: Sequence,
    word: str,
) -> Fraction:
    """Exact ``T*_ac(word)`` for rational bandwidths.

    ``word`` must contain exactly ``len(open_bws)`` letters ``'o'`` and
    ``len(guarded_bws)`` letters ``'g'``; bandwidth sequences must already
    be sorted non-increasingly (as in :class:`Instance`).
    """
    b0 = _to_fraction(source_bw)
    opens = [_to_fraction(b) for b in open_bws]
    guardeds = [_to_fraction(b) for b in guarded_bws]
    if word.count(OPEN) != len(opens) or word.count(GUARDED) != len(guardeds):
        raise ValueError("word letter counts do not match the bandwidths")
    if not word:
        raise ValueError("need at least one receiver")

    upper = exact_cyclic_optimum(b0, opens, guardeds)
    if upper <= 0:
        return Fraction(0)

    zero = Fraction(0)
    one = Fraction(1)
    segments = [_Segment(zero, upper, b0, zero, zero, zero)]
    i = j = 0
    for letter in word:
        new_segments: list[_Segment] = []
        if letter == GUARDED:
            bw = guardeds[j]
            j += 1
            for seg in segments:
                # constraint O(T) - T >= 0 (slope o_b - 1 < 0)
                clipped = seg.clip_nonneg(seg.o_a, seg.o_b - one)
                if clipped is None:
                    break  # constraints are globally decreasing: stop
                new_segments.append(
                    _Segment(
                        clipped.lo,
                        clipped.hi,
                        clipped.o_a,
                        clipped.o_b - one,  # O' = O - T
                        clipped.g_a + bw,  # G' = G + bw
                        clipped.g_b,
                    )
                )
                if clipped.hi < seg.hi:
                    break
        else:
            bw = opens[i]
            i += 1
            for seg in segments:
                # constraint O + G - T >= 0 (slope o_b + g_b - 1 < 0)
                clipped = seg.clip_nonneg(
                    seg.o_a + seg.g_a, seg.o_b + seg.g_b - one
                )
                if clipped is None:
                    break
                # split where G(T) - T changes sign (slope g_b - 1 < 0:
                # G >= T on the left part, G < T on the right part)
                h_lo = clipped.g_a + (clipped.g_b - one) * clipped.lo
                h_hi = clipped.g_a + (clipped.g_b - one) * clipped.hi
                pieces: list[tuple[Fraction, Fraction, bool]] = []
                if h_lo >= 0 and h_hi >= 0:
                    pieces.append((clipped.lo, clipped.hi, True))
                elif h_lo < 0:
                    pieces.append((clipped.lo, clipped.hi, False))
                else:
                    root = -clipped.g_a / (clipped.g_b - one)
                    pieces.append((clipped.lo, root, True))
                    if root < clipped.hi:
                        pieces.append((root, clipped.hi, False))
                for lo, hi, g_covers in pieces:
                    if g_covers:
                        # G >= T: the guarded pool pays the full rate.
                        new_segments.append(
                            _Segment(
                                lo,
                                hi,
                                clipped.o_a + bw,
                                clipped.o_b,
                                clipped.g_a,
                                clipped.g_b - one,  # G' = G - T
                            )
                        )
                    else:
                        # G < T: open pool pays T - G, guarded drains.
                        new_segments.append(
                            _Segment(
                                lo,
                                hi,
                                clipped.o_a + bw + clipped.g_a,
                                clipped.o_b + clipped.g_b - one,
                                zero,
                                zero,
                            )
                        )
                if clipped.hi < seg.hi:
                    break
        if not new_segments:
            return Fraction(0)
        segments = new_segments
    return segments[-1].hi


def exact_cyclic_optimum(
    source_bw, open_bws: Iterable, guarded_bws: Iterable
) -> Fraction:
    """Lemma 5.1's closed form over exact rationals."""
    b0 = _to_fraction(source_bw)
    opens = [_to_fraction(b) for b in open_bws]
    guardeds = [_to_fraction(b) for b in guarded_bws]
    n, m = len(opens), len(guardeds)
    if n + m == 0:
        raise ValueError("need at least one receiver")
    o_sum = sum(opens, Fraction(0))
    g_sum = sum(guardeds, Fraction(0))
    best = min(b0, Fraction(b0 + o_sum + g_sum, n + m))
    if m > 0:
        best = min(best, Fraction(b0 + o_sum, m))
    return best


def exact_word_throughput_for(instance: Instance, word: str) -> Fraction:
    """Exact ``T*_ac(word)`` for an :class:`Instance` (floats are exact
    dyadic rationals, so no precision is lost in the conversion)."""
    return exact_word_throughput(
        instance.source_bw, instance.open_bws, instance.guarded_bws, word
    )


def exact_acyclic_optimum(
    source_bw,
    open_bws: Sequence,
    guarded_bws: Sequence,
    *,
    max_receivers: int = 12,
) -> tuple[Fraction, str]:
    """Exact ``T*_ac`` by maximizing over every coding word.

    Exponential (``C(n+m, m)`` words); guarded by ``max_receivers``.
    Returns ``(T*_ac, argmax word)``.
    """
    from .words import all_words

    n, m = len(open_bws), len(guarded_bws)
    if n + m == 0:
        raise ValueError("need at least one receiver")
    if n + m > max_receivers:
        raise ValueError(
            f"{n + m} receivers exceed the exact-search limit {max_receivers}"
        )
    best: Fraction | None = None
    best_word = ""
    for word in all_words(n, m):
        t = exact_word_throughput(source_bw, open_bws, guarded_bws, word)
        if best is None or t > best:
            best, best_word = t, word
    assert best is not None
    return best, best_word
