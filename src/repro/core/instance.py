"""Problem instances for the bounded multi-port broadcast problem.

An instance (paper, Section II-D) is given by

* the source node ``C0`` with outgoing bandwidth ``b0`` (the source is an
  *open* node),
* ``n`` open nodes ``C1..Cn`` with outgoing bandwidths ``b1..bn``,
* ``m`` guarded nodes ``C_{n+1}..C_{n+m}`` with outgoing bandwidths
  ``b_{n+1}..b_{n+m}``.

Open nodes live in the open Internet and may exchange data with anyone;
guarded nodes sit behind NATs/firewalls and may only exchange data with open
nodes (the *firewall constraint*: no guarded -> guarded edge).  Incoming
bandwidths are assumed unbounded.

Following the paper's convention (Section III-B and Section IV-A, the
*increasing order* dominance of Lemma 4.2), instances are kept in canonical
form: open bandwidths sorted non-increasingly, guarded bandwidths sorted
non-increasingly.  All algorithms in :mod:`repro.algorithms` rely on this
invariant.  :meth:`Instance.from_unsorted` records the permutation so that
schemes computed on the canonical instance can be mapped back to the
caller's original node identifiers.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .exceptions import InvalidInstanceError

__all__ = ["Instance", "SOURCE", "NodeKind", "canonicalize_population"]

#: Index of the source node in every instance.
SOURCE: int = 0


class NodeKind:
    """Symbolic node-class constants (also used by coding words)."""

    OPEN = "open"
    GUARDED = "guarded"


def _check_bandwidths(values: Sequence[float], what: str) -> tuple[float, ...]:
    out = []
    for v in values:
        f = float(v)
        if not math.isfinite(f):
            raise InvalidInstanceError(f"{what} bandwidth must be finite, got {v!r}")
        if f < 0:
            raise InvalidInstanceError(f"{what} bandwidth must be >= 0, got {v!r}")
        out.append(f)
    return tuple(out)


@dataclass(frozen=True)
class Instance:
    """A broadcast-problem instance in canonical (class-wise sorted) form.

    Parameters
    ----------
    source_bw:
        Outgoing bandwidth ``b0`` of the source.
    open_bws:
        Outgoing bandwidths of the ``n`` open receivers.  Stored sorted
        non-increasingly.
    guarded_bws:
        Outgoing bandwidths of the ``m`` guarded receivers.  Stored sorted
        non-increasingly.

    Notes
    -----
    Node ``i`` for ``i in 1..n`` is the open node with the ``i``-th largest
    open bandwidth; node ``n+j`` for ``j in 1..m`` is the guarded node with
    the ``j``-th largest guarded bandwidth, exactly matching the paper's
    indexing.
    """

    source_bw: float
    open_bws: tuple[float, ...] = field(default_factory=tuple)
    guarded_bws: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "source_bw", _check_bandwidths([self.source_bw], "source")[0]
        )
        opens = _check_bandwidths(self.open_bws, "open")
        guarded = _check_bandwidths(self.guarded_bws, "guarded")
        object.__setattr__(self, "open_bws", tuple(sorted(opens, reverse=True)))
        object.__setattr__(self, "guarded_bws", tuple(sorted(guarded, reverse=True)))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_unsorted(
        cls,
        source_bw: float,
        open_bws: Sequence[float],
        guarded_bws: Sequence[float],
    ) -> tuple["Instance", list[int]]:
        """Build a canonical instance and return the node permutation.

        Returns ``(instance, perm)`` where ``perm[k]`` is the *original*
        index (0-based position in the caller's concatenated
        ``[source] + open + guarded`` list) of canonical node ``k``.
        """
        inst = cls(source_bw, tuple(open_bws), tuple(guarded_bws))
        open_order = sorted(
            range(len(open_bws)), key=lambda i: -float(open_bws[i])
        )
        guarded_order = sorted(
            range(len(guarded_bws)), key=lambda i: -float(guarded_bws[i])
        )
        n = len(open_bws)
        perm = [0]
        perm.extend(1 + i for i in open_order)
        perm.extend(1 + n + i for i in guarded_order)
        return inst, perm

    @classmethod
    def open_only(cls, source_bw: float, open_bws: Sequence[float]) -> "Instance":
        """Convenience constructor for instances without guarded nodes."""
        return cls(source_bw, tuple(open_bws), ())

    # ------------------------------------------------------------------
    # Sizes and indexing
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of open receivers (source excluded)."""
        return len(self.open_bws)

    @property
    def m(self) -> int:
        """Number of guarded receivers."""
        return len(self.guarded_bws)

    @property
    def num_nodes(self) -> int:
        """Total node count including the source (``n + m + 1``)."""
        return self.n + self.m + 1

    @property
    def num_receivers(self) -> int:
        """Number of nodes that must receive the message (``n + m``)."""
        return self.n + self.m

    def bandwidth(self, i: int) -> float:
        """Outgoing bandwidth ``b_i`` of node ``i`` (paper indexing)."""
        if i == SOURCE:
            return self.source_bw
        if 1 <= i <= self.n:
            return self.open_bws[i - 1]
        if self.n < i <= self.n + self.m:
            return self.guarded_bws[i - self.n - 1]
        raise IndexError(f"node index {i} out of range for {self!r}")

    def bandwidths(self) -> list[float]:
        """All bandwidths ``[b0, b1, ..., b_{n+m}]`` in paper order."""
        return [self.source_bw, *self.open_bws, *self.guarded_bws]

    def is_open(self, i: int) -> bool:
        """True for the source and open receivers."""
        if not 0 <= i <= self.n + self.m:
            raise IndexError(f"node index {i} out of range for {self!r}")
        return i <= self.n

    def is_guarded(self, i: int) -> bool:
        """True for guarded receivers."""
        return not self.is_open(i)

    def kind(self, i: int) -> str:
        """Node class: :data:`NodeKind.OPEN` or :data:`NodeKind.GUARDED`."""
        return NodeKind.OPEN if self.is_open(i) else NodeKind.GUARDED

    def open_nodes(self) -> range:
        """Indices of the open receivers (source excluded)."""
        return range(1, self.n + 1)

    def guarded_nodes(self) -> range:
        """Indices of the guarded receivers."""
        return range(self.n + 1, self.n + self.m + 1)

    def receivers(self) -> range:
        """Indices of all nodes that must receive the message."""
        return range(1, self.n + self.m + 1)

    def can_send(self, i: int, j: int) -> bool:
        """Whether edge ``i -> j`` is allowed by the firewall constraint."""
        if i == j:
            return False
        return self.is_open(i) or self.is_open(j)

    # ------------------------------------------------------------------
    # Aggregates used throughout the paper
    # ------------------------------------------------------------------
    @property
    def open_sum(self) -> float:
        """``O = sum_{i=1..n} b_i`` (Lemma 5.1)."""
        return math.fsum(self.open_bws)

    @property
    def guarded_sum(self) -> float:
        """``G = sum_{i=n+1..n+m} b_i`` (Lemma 5.1)."""
        return math.fsum(self.guarded_bws)

    @property
    def total_bw(self) -> float:
        """``b0 + O + G``."""
        return math.fsum([self.source_bw, self.open_sum, self.guarded_sum])

    def prefix_sum(self, k: int) -> float:
        """``S_k = b0 + b1 + ... + b_k`` over [source] + open nodes.

        Defined (as in Section III-B) for ``0 <= k <= n``; ``S_{-1} = 0`` is
        accepted for convenience in loop bounds.
        """
        if k < -1 or k > self.n:
            raise IndexError(f"prefix index {k} out of range (n={self.n})")
        if k == -1:
            return 0.0
        return math.fsum([self.source_bw, *self.open_bws[:k]])

    def prefix_sums(self) -> list[float]:
        """All ``S_0..S_n`` (compensated running sums)."""
        sums = []
        total = self.source_bw
        sums.append(total)
        comp = 0.0
        for b in self.open_bws:
            y = b - comp
            t = total + y
            comp = (t - total) - y
            total = t
            sums.append(total)
        return sums

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------
    def all_open(self) -> "Instance":
        """The relaxation obtained by declaring every node open.

        Used in ablations: dropping the firewall constraint can only
        increase achievable throughput.
        """
        return Instance(self.source_bw, self.open_bws + self.guarded_bws, ())

    def with_source_bw(self, b0: float) -> "Instance":
        """Copy of this instance with the source bandwidth replaced."""
        return Instance(b0, self.open_bws, self.guarded_bws)

    def scaled(self, factor: float) -> "Instance":
        """Instance with every bandwidth multiplied by ``factor`` (>0).

        Throughputs scale linearly with bandwidth, so ratios such as
        ``T*_ac / T*`` are invariant under this map; tests use it as a
        property check.
        """
        if not (factor > 0 and math.isfinite(factor)):
            raise InvalidInstanceError(f"scale factor must be positive, got {factor}")
        return Instance(
            self.source_bw * factor,
            tuple(b * factor for b in self.open_bws),
            tuple(b * factor for b in self.guarded_bws),
        )

    # ------------------------------------------------------------------
    # Serialization (experiments persist sampled instances for replay)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "source_bw": self.source_bw,
            "open_bws": list(self.open_bws),
            "guarded_bws": list(self.guarded_bws),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Instance":
        return cls(
            data["source_bw"], tuple(data["open_bws"]), tuple(data["guarded_bws"])
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, payload: str) -> "Instance":
        return cls.from_dict(json.loads(payload))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        def _fmt(seq: Iterable[float]) -> str:
            items = list(seq)
            if len(items) > 6:
                head = ", ".join(f"{x:g}" for x in items[:3])
                return f"({head}, ... {len(items)} values)"
            return "(" + ", ".join(f"{x:g}" for x in items) + ")"

        return (
            f"Instance(b0={self.source_bw:g}, open={_fmt(self.open_bws)}, "
            f"guarded={_fmt(self.guarded_bws)})"
        )


def canonicalize_population(
    source_bw: float,
    opens: Sequence[tuple[int, float]],
    guardeds: Sequence[tuple[int, float]],
) -> tuple["Instance", list[int]]:
    """Canonical instance + id map for an externally-keyed population.

    ``opens`` / ``guardeds`` are ``(external id, bandwidth)`` rosters.
    Returns ``(instance, node_ids)`` where ``node_ids[k]`` is the external
    id of canonical node ``k`` (``node_ids[0] == 0``, the source), so any
    solver output computed on ``instance`` can be mapped back to the
    caller's peers.  Shared by every component that bridges a live swarm
    to the static optimizer (platform snapshots, repaired-plan
    materialization).
    """
    inst, perm = Instance.from_unsorted(
        source_bw,
        [bw for _, bw in opens],
        [bw for _, bw in guardeds],
    )
    concat_ids = [0] + [i for i, _ in opens] + [i for i, _ in guardeds]
    return inst, [concat_ids[p] for p in perm]
