"""Closed-form throughput bounds and worst-case constants from the paper.

Implemented here:

* Section III-B upper bound + optimum for acyclic schemes on open-only
  instances: ``T*_ac = min(b0, S_{n-1} / n)``.
* Lemma 5.1 upper bound on the optimal cyclic throughput
  ``T* <= min(b0, (b0+O)/m, (b0+O+G)/(n+m))`` — shown tight by the paper
  (for open-only instances constructively via Theorem 5.2; with guarded
  nodes at the price of unbounded degrees, cf. Figure 6).
* Theorem 6.1: open-only instances satisfy ``T*_ac / T* >= 1 - 1/n``.
* Theorem 6.2 constant ``5/7`` (tight worst case of ``T*_ac / T*``).
* Theorem 6.3: the asymptotic gap ``(1 + sqrt(41)) / 8`` with its witness
  bandwidth ratio ``alpha = (sqrt(41) - 3) / 8``, and the two constraint
  functions ``f_alpha`` / ``g_alpha`` whose crossing determines the bound.
"""

from __future__ import annotations

import math

from .instance import Instance

__all__ = [
    "acyclic_open_optimum",
    "cyclic_optimum",
    "cyclic_open_optimum",
    "open_only_ratio_bound",
    "FIVE_SEVENTHS",
    "THEOREM63_LIMIT",
    "THEOREM63_ALPHA",
    "f_alpha",
    "g_alpha",
    "theorem63_acyclic_upper_bound",
]

#: Tight worst-case ratio ``T*_ac / T*`` over all instances (Theorem 6.2).
FIVE_SEVENTHS: float = 5.0 / 7.0

#: Asymptotic worst-case ratio for arbitrarily large instances
#: (Theorem 6.3): ``(1 + sqrt(41)) / 8 ~= 0.92539``.
THEOREM63_LIMIT: float = (1.0 + math.sqrt(41.0)) / 8.0

#: The open/guarded bandwidth ratio achieving :data:`THEOREM63_LIMIT`:
#: ``alpha = (sqrt(41) - 3) / 8 ~= 0.42539``.
THEOREM63_ALPHA: float = (math.sqrt(41.0) - 3.0) / 8.0


def acyclic_open_optimum(instance: Instance) -> float:
    """Optimal acyclic throughput for an instance without guarded nodes.

    Section III-B: any acyclic solution has a node that sends nothing; with
    nodes sorted non-increasingly that node may as well be the smallest, so
    ``T*_ac <= S_{n-1} / n``, and obviously ``T*_ac <= b0``.  Algorithm 1
    achieves ``min(b0, S_{n-1}/n)``, hence equality.

    Returns ``inf`` for the degenerate instance with no receivers.
    """
    if instance.m != 0:
        raise ValueError(
            "acyclic_open_optimum applies to open-only instances; use the "
            "dichotomic search of repro.algorithms.acyclic_guarded otherwise"
        )
    n = instance.n
    if n == 0:
        return float("inf")
    return min(instance.source_bw, instance.prefix_sum(n - 1) / n)


def cyclic_optimum(instance: Instance) -> float:
    """Optimal cyclic throughput ``T*`` (Lemma 5.1 closed form).

    ``T* = min(b0, (b0 + O) / m, (b0 + O + G) / (n + m))`` where the second
    term is present only when ``m > 0``.  The three terms are: the source
    must inject the whole message; the ``m`` guarded nodes can only be fed
    by open bandwidth; all ``n + m`` receivers must be fed by somebody.

    Returns ``inf`` for the degenerate instance with no receivers.
    """
    n, m = instance.n, instance.m
    if n + m == 0:
        return float("inf")
    bound = min(
        instance.source_bw,
        (instance.source_bw + instance.open_sum + instance.guarded_sum)
        / (n + m),
    )
    if m > 0:
        bound = min(bound, (instance.source_bw + instance.open_sum) / m)
    return bound


def cyclic_open_optimum(instance: Instance) -> float:
    """``T* = min(b0, (b0 + O) / n)`` for open-only instances (Thm 5.2)."""
    if instance.m != 0:
        raise ValueError("cyclic_open_optimum applies to open-only instances")
    return cyclic_optimum(instance)


def open_only_ratio_bound(n: int) -> float:
    """Theorem 6.1: on open-only size-``n`` instances, ``T*_ac/T* >= 1-1/n``."""
    if n <= 0:
        raise ValueError("need at least one receiver")
    return 1.0 - 1.0 / n


def f_alpha(alpha: float, x: float) -> float:
    """First Theorem 6.3 constraint: ``f_alpha(x) = (alpha x + 1) / 2``.

    On the instance ``I(alpha, k)`` (open bandwidth ``alpha``, guarded
    bandwidth ``1/alpha``, ``b0 = 1``), an acyclic solution whose first two
    guarded nodes are preceded by ``x`` open nodes must feed both of them
    from the source and those ``x`` open nodes: ``alpha x + 1 >= 2 T``.
    """
    return (alpha * x + 1.0) / 2.0


def g_alpha(alpha: float, x: float) -> float:
    """Second Theorem 6.3 constraint:
    ``g_alpha(x) = (alpha x + 1/alpha + 1) / (x + 2)``.

    The source, the first ``x`` open nodes and the first guarded node must
    collectively feed ``x + 2`` receivers.
    """
    return (alpha * x + 1.0 / alpha + 1.0) / (x + 2.0)


def theorem63_acyclic_upper_bound(alpha: float) -> float:
    """Upper bound on ``T*_ac`` for ``I(alpha, k)`` (any ``k``), ``alpha<1``.

    ``f_alpha`` increases and ``g_alpha`` decreases in ``x`` and they cross
    (at value 1) at ``x = 1/alpha``; the best integer ``x`` is a floor/ceil
    neighbour: ``T*_ac <= max(f_alpha(floor(1/alpha)),
    g_alpha(ceil(1/alpha)))``.  At ``alpha = (sqrt(41)-3)/8`` both sides
    equal ``(1 + sqrt(41))/8``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("theorem 6.3 requires 0 < alpha < 1")
    inv = 1.0 / alpha
    return max(f_alpha(alpha, math.floor(inv)), g_alpha(alpha, math.ceil(inv)))
