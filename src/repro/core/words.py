"""Coding words and the O/G/W bookkeeping of Section IV.

An *increasing order* on the nodes (open nodes kept in non-increasing
bandwidth order, guarded nodes likewise — Lemma 4.2 shows such orders are
dominant) is encoded by a binary word ``pi`` with ``n`` letters "open" and
``m`` letters "guarded": the ``k``-th letter says which class the node at
position ``k`` belongs to.  We write words as Python strings over the
alphabet ``'o'`` (the paper's "circle") and ``'g'`` (the paper's "square").

For a *conservative* partial solution (Lemma 4.3: feed open nodes from
guarded bandwidth whenever possible), the residual resources after serving
the prefix ``pi`` at rate ``T`` depend only on ``pi`` (Lemma 4.4):

* ``O(pi)`` — available open upload bandwidth,
* ``G(pi)`` — available guarded upload bandwidth,
* ``W(pi)`` — total open->open transfer spent so far,

with the recursion (``i = |pi|_o``, ``j = |pi|_g`` before the new letter)::

    O(eps) = b0                G(eps) = 0                 W(eps) = 0
    O(pi g) = O(pi) - T        G(pi g) = G(pi) + b_{n+j+1}
    W(pi g) = W(pi)
    O(pi o) = O(pi) + b_{i+1} - max(0, T - G(pi))
    G(pi o) = max(0, G(pi) - T)
    W(pi o) = W(pi) + max(0, T - G(pi))

A complete word is *valid for throughput* ``T`` iff each appended guarded
node finds ``O >= T`` (guarded nodes are fed by open bandwidth only) and
each appended open node finds ``O + G >= T``.  The optimal acyclic
throughput of the order encoded by ``pi`` is the largest valid ``T``
(validity is monotone in ``T``), obtained here by bisection; it is
cross-checked against an LP on the same order in
:mod:`repro.algorithms.exact`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from .bounds import cyclic_optimum
from .instance import Instance

__all__ = [
    "OPEN",
    "GUARDED",
    "WordState",
    "check_word_shape",
    "word_states",
    "word_trace",
    "is_valid_word",
    "word_throughput",
    "word_to_order",
    "word_from_order",
    "all_words",
    "homogeneous_word_valid",
]

#: Letter for an open node (the paper's white circle).
OPEN = "o"
#: Letter for a guarded node (the paper's black square).
GUARDED = "g"

#: Default relative precision of the throughput bisection.
BISECT_REL_TOL = 1e-13
#: Bisection iteration cap (enough for 1e-13 relative precision).
BISECT_MAX_ITER = 200


@dataclass(frozen=True)
class WordState:
    """Residual pools after serving a prefix at rate ``T`` (Lemma 4.4)."""

    open_avail: float  #: O(pi)
    guarded_avail: float  #: G(pi)
    open_to_open: float  #: W(pi)
    opens_used: int  #: i = |pi|_o
    guardeds_used: int  #: j = |pi|_g

    @property
    def total_avail(self) -> float:
        """``O(pi) + G(pi)`` — the pool available to a new open node."""
        return self.open_avail + self.guarded_avail

    def __iter__(self):  # convenient tuple-unpacking in tests
        yield self.open_avail
        yield self.guarded_avail
        yield self.open_to_open


def check_word_shape(instance: Instance, word: str, *, complete: bool = True) -> None:
    """Validate alphabet and letter counts of ``word`` against ``instance``."""
    n_o = word.count(OPEN)
    n_g = word.count(GUARDED)
    if n_o + n_g != len(word):
        bad = set(word) - {OPEN, GUARDED}
        raise ValueError(f"word contains letters outside '{OPEN}{GUARDED}': {bad}")
    if complete:
        if n_o != instance.n or n_g != instance.m:
            raise ValueError(
                f"complete word needs {instance.n} opens / {instance.m} "
                f"guardeds, got {n_o} / {n_g}"
            )
    else:
        if n_o > instance.n or n_g > instance.m:
            raise ValueError(
                f"word uses more nodes than the instance has "
                f"({n_o}/{instance.n} opens, {n_g}/{instance.m} guardeds)"
            )


def initial_state(instance: Instance) -> WordState:
    """``O(eps) = b0``, ``G(eps) = 0``, ``W(eps) = 0``."""
    return WordState(instance.source_bw, 0.0, 0.0, 0, 0)


def step_state(
    state: WordState, letter: str, instance: Instance, throughput: float
) -> WordState:
    """Apply one letter of the Lemma 4.4 recursion (no validity check)."""
    if letter == GUARDED:
        j = state.guardeds_used
        if j >= instance.m:
            raise ValueError("word uses more guarded nodes than available")
        new_bw = instance.guarded_bws[j]
        return WordState(
            state.open_avail - throughput,
            state.guarded_avail + new_bw,
            state.open_to_open,
            state.opens_used,
            j + 1,
        )
    if letter == OPEN:
        i = state.opens_used
        if i >= instance.n:
            raise ValueError("word uses more open nodes than available")
        new_bw = instance.open_bws[i]
        from_open = max(0.0, throughput - state.guarded_avail)
        return WordState(
            state.open_avail + new_bw - from_open,
            max(0.0, state.guarded_avail - throughput),
            state.open_to_open + from_open,
            i + 1,
            state.guardeds_used,
        )
    raise ValueError(f"unknown letter {letter!r}")


def word_states(
    instance: Instance, word: str, throughput: float
) -> Iterator[WordState]:
    """Yield the state *after* each prefix of ``word`` (first: empty prefix)."""
    state = initial_state(instance)
    yield state
    for letter in word:
        state = step_state(state, letter, instance, throughput)
        yield state


def word_trace(
    instance: Instance, word: str, throughput: float
) -> list[WordState]:
    """Full Lemma 4.4 trace as a list (``len(word) + 1`` states)."""
    check_word_shape(instance, word, complete=False)
    return list(word_states(instance, word, throughput))


def is_valid_word(
    instance: Instance,
    word: str,
    throughput: float,
    *,
    slack: float = 0.0,
    complete: bool = True,
) -> bool:
    """Whether ``word`` is valid for rate ``throughput`` (Section IV-A).

    Each appended guarded node requires ``O(pi) >= T`` (it can only be fed
    from open bandwidth) and each appended open node requires
    ``O(pi) + G(pi) >= T``.  ``slack`` loosens the comparisons by an
    absolute amount (useful when testing validity at an optimum computed by
    bisection); the default 0.0 keeps the oracle exact, which is what the
    bisection itself requires.
    """
    check_word_shape(instance, word, complete=complete)
    if throughput <= 0.0:
        return True
    state = initial_state(instance)
    for letter in word:
        if letter == GUARDED:
            if state.open_avail < throughput - slack:
                return False
        else:
            if state.total_avail < throughput - slack:
                return False
        state = step_state(state, letter, instance, throughput)
    return True


def word_throughput(
    instance: Instance,
    word: str,
    *,
    upper: Optional[float] = None,
    rel_tol: float = BISECT_REL_TOL,
) -> float:
    """``T*_ac(pi)``: largest rate for which ``word`` is valid (bisection).

    Monotonicity (higher rate is harder: ``O``/``G`` are non-increasing and
    the thresholds increasing in ``T``) makes the feasible set an interval
    ``[0, T*_ac(pi)]``; bisection converges to relative width ``rel_tol``.
    The returned value is always a *feasible* rate (the lower bracket).
    """
    check_word_shape(instance, word, complete=True)
    if len(word) == 0:
        return float("inf")
    hi = upper if upper is not None else cyclic_optimum(instance)
    if hi == float("inf"):  # no receivers handled above; defensive
        return float("inf")
    if is_valid_word(instance, word, hi):
        return hi
    lo = 0.0
    for _ in range(BISECT_MAX_ITER):
        if hi - lo <= rel_tol * max(hi, 1e-300):
            break
        mid = 0.5 * (lo + hi)
        if is_valid_word(instance, word, mid):
            lo = mid
        else:
            hi = mid
    return lo


def word_to_order(instance: Instance, word: str) -> list[int]:
    """Node order (source first) encoded by ``word``.

    Example: on the Figure 1 instance (n=2, m=3) the word ``"googg"``
    (the paper's "square circle circle square square") encodes the order
    ``0 3 1 2 4 5``: source, largest guarded node, the two open nodes, the
    two remaining guarded nodes.
    """
    check_word_shape(instance, word, complete=False)
    order = [0]
    next_open, next_guarded = 1, instance.n + 1
    for letter in word:
        if letter == OPEN:
            order.append(next_open)
            next_open += 1
        else:
            order.append(next_guarded)
            next_guarded += 1
    return order


def word_from_order(instance: Instance, order: Sequence[int]) -> str:
    """Inverse of :func:`word_to_order`; raises if the order is not increasing.

    ``order`` must start with the source and list open (resp. guarded)
    nodes in increasing index order — i.e. non-increasing bandwidth order,
    the dominant class of orders per Lemma 4.2.
    """
    if len(order) != instance.num_nodes or order[0] != 0:
        raise ValueError("order must start at the source and cover all nodes")
    letters = []
    next_open, next_guarded = 1, instance.n + 1
    for idx in order[1:]:
        if idx == next_open and next_open <= instance.n:
            letters.append(OPEN)
            next_open += 1
        elif idx == next_guarded and next_guarded <= instance.n + instance.m:
            letters.append(GUARDED)
            next_guarded += 1
        else:
            raise ValueError(
                f"order is not increasing: unexpected node {idx} "
                f"(expected {next_open} or {next_guarded})"
            )
    return "".join(letters)


def all_words(n: int, m: int) -> Iterator[str]:
    """Enumerate every word with ``n`` opens and ``m`` guardeds.

    There are ``C(n+m, m)`` of them; intended for exhaustive search on
    small instances (cross-validation of Algorithm 2).
    """
    if n < 0 or m < 0:
        raise ValueError("negative letter counts")

    def rec(no: int, ng: int) -> Iterator[str]:
        if no == 0 and ng == 0:
            yield ""
            return
        if no > 0:
            for tail in rec(no - 1, ng):
                yield OPEN + tail
        if ng > 0:
            for tail in rec(no, ng - 1):
                yield GUARDED + tail

    return rec(n, m)


def homogeneous_word_valid(
    b0: float, o: float, g: float, word: str, throughput: float
) -> bool:
    """Validity test via the closed forms of Lemma 4.4 / Lemma 11.2.

    For a homogeneous instance (all open nodes at bandwidth ``o``, all
    guarded at ``g``), the residual pools have the closed forms (paper,
    equations (1)-(2) specialized)::

        W(pi) = max(0, max over prefixes rho = pi' o  of pi of
                        |rho|_o * T - g * |pi'|_g)
        O(pi) = b0 + o * |pi|_o - T * |pi|_g - W(pi)
        O(pi) + G(pi) = b0 + o*|pi|_o + g*|pi|_g - T*|pi|

    and ``word`` is valid for ``T`` iff every guarded letter is appended
    with ``O >= T`` and every open letter with ``O + G >= T``.

    This oracle never runs the step recursion, so property tests can check
    it against :func:`is_valid_word` on random homogeneous instances.
    """
    if throughput <= 0.0:
        return True
    w_running = 0.0  # W(prefix) maintained incrementally
    i = j = 0  # opens / guardeds in the prefix so far
    for letter in word:
        if letter == GUARDED:
            open_avail = b0 + o * i - (j + 1) * throughput - w_running
            # O(prefix) >= T  <=>  O(prefix) - T >= 0, with the -T folded
            # into the (j + 1) factor above.
            if open_avail < 0.0:
                return False
            j += 1
        else:
            total_avail = b0 + o * i + g * j - (i + j) * throughput
            if total_avail < throughput:
                return False
            i += 1
            w_running = max(w_running, i * throughput - g * j)
    return True
