"""Floating-point comparison helpers shared by every algorithm in the library.

The paper's algorithms are stated over exact reals; a faithful float
implementation has to compare accumulated sums against thresholds (for
example ``O(pi) >= T`` inside Algorithm 2).  Every such comparison in this
code base goes through the helpers below so that the tolerance policy lives
in exactly one place.

The default tolerance is *relative* with an absolute floor:
``x`` and ``y`` are considered equal when ``|x - y| <= ABS_TOL + REL_TOL *
max(|x|, |y|)``.  The defaults are deliberately loose enough to absorb the
worst-case error of summing a few thousand bandwidths (the largest instances
used in the paper's experiments have 1000 nodes) and tight enough not to blur
the bisection searches, which stop at relative width ``1e-12``.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Absolute tolerance floor used by all comparisons.
ABS_TOL: float = 1e-9

#: Relative tolerance used by all comparisons.
REL_TOL: float = 1e-9


def feq(x: float, y: float, *, rel: float = REL_TOL, abs_: float = ABS_TOL) -> bool:
    """Return True when ``x`` and ``y`` are equal up to tolerance."""
    return abs(x - y) <= abs_ + rel * max(abs(x), abs(y))


def fle(x: float, y: float, *, rel: float = REL_TOL, abs_: float = ABS_TOL) -> bool:
    """Tolerant ``x <= y``."""
    return x <= y + abs_ + rel * max(abs(x), abs(y))


def fge(x: float, y: float, *, rel: float = REL_TOL, abs_: float = ABS_TOL) -> bool:
    """Tolerant ``x >= y``."""
    return x >= y - abs_ - rel * max(abs(x), abs(y))


def flt(x: float, y: float, *, rel: float = REL_TOL, abs_: float = ABS_TOL) -> bool:
    """Tolerant strict ``x < y`` (strict beyond the tolerance band)."""
    return not fge(x, y, rel=rel, abs_=abs_)


def fgt(x: float, y: float, *, rel: float = REL_TOL, abs_: float = ABS_TOL) -> bool:
    """Tolerant strict ``x > y`` (strict beyond the tolerance band)."""
    return not fle(x, y, rel=rel, abs_=abs_)


def fpos(x: float, *, abs_: float = ABS_TOL) -> bool:
    """Tolerant ``x > 0`` (used to decide whether an edge 'exists')."""
    return x > abs_


def fnonneg(x: float, *, abs_: float = ABS_TOL) -> bool:
    """Tolerant ``x >= 0``."""
    return x >= -abs_


def clamp_nonneg(x: float) -> float:
    """Snap tiny negative float noise to exactly 0.0.

    Values more negative than ``-ABS_TOL`` are returned unchanged so that
    genuine constraint violations stay visible to validators.
    """
    if -ABS_TOL <= x < 0.0:
        return 0.0
    return x


def safe_ceil_div(b: float, t: float) -> int:
    """``ceil(b / t)`` robust to float noise, as used for degree bounds.

    The paper's degree guarantees are stated as ``o_i <= ceil(b_i / T) + d``.
    A float quotient that lands within tolerance of an integer is rounded to
    that integer before taking the ceiling, so that e.g. ``b=6, T=3`` cannot
    yield ``ceil(2.0000000000004) = 3``.

    ``t <= 0`` (broadcast rate zero) gives 0: a node never needs to open a
    connection to sustain a null rate.
    """
    if t <= 0.0:
        return 0
    if b <= 0.0:
        return 0
    q = b / t
    nearest = round(q)
    if feq(q, float(nearest)):
        return int(nearest)
    return int(math.ceil(q))


def kahan_sum(values: Iterable[float]) -> float:
    """Compensated (Kahan) summation.

    Used where the library accumulates thousands of bandwidths and the
    result is then compared against a threshold (prefix sums ``S_k``,
    feasibility pools in Algorithm 2's vectorized variants).
    """
    total = 0.0
    comp = 0.0
    for v in values:
        y = v - comp
        t = total + y
        comp = (t - total) - y
        total = t
    return total


def assert_finite_nonneg(values: Iterable[float], what: str) -> None:
    """Raise ``ValueError`` if any value is negative, NaN or infinite."""
    for v in values:
        if not math.isfinite(v):
            raise ValueError(f"{what} must be finite, got {v!r}")
        if v < 0:
            raise ValueError(f"{what} must be non-negative, got {v!r}")
