"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro table1
    python -m repro figure7  [--full]
    python -m repro figure19 [--full]
    python -m repro worstcase
    python -m repro ablations
    python -m repro solve --source 6 --open 5 5 --guarded 4 1 1
    python -m repro demo
    python -m repro runtime --scenario steady-churn --controller reactive
    python -m repro runtime --batch --scenario rack-failure
    python -m repro runtime --estimation online --probes-per-node 4
    python -m repro serve --trace roaming --ledger /tmp/plane.jsonl
    python -m repro request --ledger /tmp/plane.jsonl --op query
    python -m repro lint src tests benchmarks --format json

``--full`` switches the sweeps to paper scale (equivalent to
``REPRO_FULL=1``).  ``solve`` runs the whole pipeline on an ad-hoc
instance and prints the overlay.  ``runtime`` replays a dynamic-platform
scenario through the event-driven engine (per-epoch goodput report); in
``--batch`` mode it sweeps every controller policy across worker
processes.  ``serve`` drives a registered request trace through the
long-running control plane (over a real asyncio socket by default),
and ``request`` submits one ad-hoc request to a plane recovered from
its reservation ledger.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Broadcasting on Large Scale Heterogeneous "
            "Platforms under the Bounded Multi-Port Model' "
            "(Beaumont et al., IPDPS 2010 / TPDS 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, doc in [
        ("table1", "regenerate Table I (Algorithm 2 trace)"),
        ("figure7", "regenerate Figure 7 (worst-case grid)"),
        ("figure19", "regenerate Figure 19 (average-case sweep)"),
        ("worstcase", "Figures 1/6/18, Theorems 6.1/6.3"),
        ("ablations", "design-choice ablations incl. depth & churn"),
        ("demo", "short guided demo on the Figure 1 instance"),
    ]:
        p = sub.add_parser(name, help=doc)
        p.add_argument(
            "--full",
            action="store_true",
            help="run at paper scale (slow)",
        )

    solve = sub.add_parser(
        "solve", help="optimize an ad-hoc instance and print the overlay"
    )
    solve.add_argument("--source", type=float, required=True,
                       help="source outgoing bandwidth b0")
    solve.add_argument("--open", type=float, nargs="*", default=[],
                       dest="open_bws", metavar="BW",
                       help="open-node bandwidths")
    solve.add_argument("--guarded", type=float, nargs="*", default=[],
                       dest="guarded_bws", metavar="BW",
                       help="guarded-node bandwidths")
    solve.add_argument("--rate", type=float, default=None,
                       help="target rate (default: the acyclic optimum)")
    solve.add_argument("--cyclic", action="store_true",
                       help="build the Theorem 5.2 cyclic scheme "
                            "(open-only instances)")

    # Dynamic choice lists: --help always reflects the live registries
    # (a plugin registering a controller/planner shows up immediately,
    # and nothing here can drift from CONTROLLERS / PLANNERS).
    from .planning import planner_names
    from .runtime.controller import controller_names
    from .simulation.core import available_backends

    runtime = sub.add_parser(
        "runtime",
        help="event-driven dynamic-platform run (repro.runtime)",
    )
    runtime.add_argument("--scenario", default="steady-churn",
                         help="registered scenario name (see --list)")
    runtime.add_argument("--controller", default="reactive",
                         help="re-optimization policy, one of: "
                              f"{', '.join(controller_names())}")
    runtime.add_argument("--planner", default=None,
                         help="plan-lifecycle implementation, one of: "
                              f"{', '.join(planner_names())} "
                              "(default: 'incremental' for the "
                              "incremental controller, 'full' otherwise)")
    runtime.add_argument("--repair-tolerance", type=float, default=None,
                         metavar="FRAC",
                         help="incremental planner only: maximum fraction "
                              "below the current optimum a repaired plan "
                              "may provision before a full rebuild is "
                              "forced (default 0.1)")
    runtime.add_argument("--seed", type=int, default=0,
                         help="seed for swarm sampling, events, transport")
    runtime.add_argument("--period", type=int, default=120,
                         help="rebuild period of the periodic controller")
    runtime.add_argument("--tick", type=int, default=1,
                         help="minimum epoch length in slots "
                              "(batches event storms)")
    runtime.add_argument("--batch", action="store_true",
                         help="sweep the scenario across every controller "
                              "in parallel instead of one run")
    runtime.add_argument("--seeds", type=int, default=3,
                         help="number of seeds per cell in --batch mode "
                              "(starting at --seed)")
    runtime.add_argument("--workers", type=int, default=None,
                         help="worker processes for --batch; in single-run "
                              "mode, tree-simulation workers for "
                              "--sim-backend sharded")
    runtime.add_argument("--sim-backend", default="reference",
                         choices=list(available_backends()),
                         help="per-epoch transport implementation: "
                              "'reference' (historical per-edge loop, any "
                              "scheme), 'vectorized' (numpy-batched, any "
                              "scheme), 'sharded' (arborescence-"
                              "decomposed, acyclic schemes only), or "
                              "'auto' (sharded when the overlay "
                              "decomposes, reference otherwise)")
    runtime.add_argument("--sim-worker-mode", default=None,
                         choices=["thread", "process"],
                         help="sharded-backend worker strategy for "
                              "--workers > 1: 'thread' (GIL-shared, "
                              "default) or 'process' (fork workers over "
                              "multiprocessing.shared_memory; results "
                              "are bit-identical either way)")
    runtime.add_argument("--plan-slack", type=float, default=0.0,
                         metavar="EPS",
                         help="build plans at (1 - EPS) * T*_ac instead "
                              "of the exact optimum, keeping an EPS "
                              "fraction of upload credit spare so churn "
                              "repairs on saturated swarms succeed "
                              "instead of falling back to full rebuilds")
    runtime.add_argument("--profile", action="store_true",
                         help="after the run, print the per-phase "
                              "wall-clock breakdown (plan / arbitrate / "
                              "simulate / epoch-boundary)")
    runtime.add_argument("--warm-epochs", action="store_true",
                         help="carry packet buffers across epochs of the "
                              "same plan instead of restarting the "
                              "transport cold each epoch (short epochs "
                              "then measure real transients, not "
                              "ramp-ups)")
    runtime.add_argument("--estimation", default="oracle",
                         choices=["oracle", "online"],
                         help="bandwidth feed for the controllers: "
                              "'oracle' reads the platform's true "
                              "bandwidths, 'online' plans on LastMile "
                              "estimates re-fit every epoch from seeded "
                              "sparse pairwise probes (repro.estimation."
                              "online), with planned rates clipped to "
                              "true capacities in the transport")
    runtime.add_argument("--probes-per-node", type=float, default=4.0,
                         metavar="K",
                         help="probe budget per epoch boundary: "
                              "round(K * num_alive) directed pairs "
                              "(--estimation online only)")
    runtime.add_argument("--noise-sigma", type=float, default=0.1,
                         metavar="SIGMA",
                         help="log-normal measurement noise scale of each "
                              "probe (--estimation online only)")
    runtime.add_argument("--estimator-decay", type=float, default=0.8,
                         metavar="D",
                         help="per-round exponential decay of stale "
                              "probes; a measurement is dropped once "
                              "D**age falls below 0.05 "
                              "(--estimation online only)")
    runtime.add_argument("--estimator-warmstart", action="store_true",
                         help="seed the online estimator's priors from "
                              "the plan cache's nearest bandwidth "
                              "profile instead of cold imputation "
                              "(--estimation online only)")
    runtime.add_argument("--list", action="store_true", dest="list_names",
                         help="list registered scenarios and controllers")

    # Like the runtime command, every choice list below is read from the
    # live registries (BROKERS / ADMISSIONS / CONTROLLERS) at parser
    # build time — a plugin registering a broker shows up in --help and
    # --list immediately, and nothing here can drift from the code.
    from .sessions import admission_names, broker_names

    sessions = sub.add_parser(
        "sessions",
        help="multi-tenant concurrent broadcast fleet (repro.sessions)",
    )
    sessions.add_argument("--scenario", default="steady-churn",
                          help="registered scenario name for the shared "
                               "swarm (see --list)")
    sessions.add_argument("--num-sessions", type=int, default=3,
                          metavar="K",
                          help="number of concurrent broadcast sessions "
                               "sharing the platform")
    sessions.add_argument("--overlap", type=float, default=0.25,
                          metavar="P",
                          help="probability that a node subscribes to each "
                               "extra session beyond its primary one "
                               "(0 = disjoint members, no contention)")
    sessions.add_argument("--broker", default="waterfill",
                          help="capacity-broker policy partitioning each "
                               "shared node's upload, one of: "
                               f"{', '.join(broker_names())}")
    sessions.add_argument("--admission", default="degrade",
                          help="what happens to sessions whose allocated "
                               "Lemma 5.1 bound falls below the floor, "
                               f"one of: {', '.join(admission_names())}")
    sessions.add_argument("--admission-floor", type=float, default=0.0,
                          metavar="RATE",
                          help="minimum allocated rate bound a session "
                               "needs to be admitted cleanly")
    sessions.add_argument("--demand", type=float, default=None,
                          metavar="RATE",
                          help="per-session demand rate (default: "
                               "best effort)")
    sessions.add_argument("--controller", default="reactive",
                          help="re-optimization policy of every session, "
                               f"one of: {', '.join(controller_names())}")
    sessions.add_argument("--seed", type=int, default=0,
                          help="fleet seed (swarm, membership, transport)")
    sessions.add_argument("--mode", default="serial",
                          choices=["serial", "thread", "process"],
                          help="how the per-session engine runs are "
                               "dispatched (results are identical)")
    sessions.add_argument("--workers", type=int, default=None,
                          help="pool size for --mode thread/process")
    sessions.add_argument("--estimation", default="oracle",
                          choices=["oracle", "online"],
                          help="bandwidth feed of every session's "
                               "controller (the probe budget is "
                               "amortized fleet-wide)")
    sessions.add_argument("--probes-per-node", type=float, default=4.0,
                          metavar="N",
                          help="fleet-level probe budget per node per "
                               "epoch (--estimation online only)")
    sessions.add_argument("--list", action="store_true", dest="list_names",
                          help="list registered scenarios, controllers, "
                               "brokers and admission policies")

    from .service import trace_names

    serve = sub.add_parser(
        "serve",
        help="long-running broadcast control plane (repro.service)",
    )
    serve.add_argument("--scenario", default="steady-churn",
                       help="registered scenario name for the shared "
                            "swarm (see --list)")
    serve.add_argument("--trace", default="mixed",
                       help="registered request trace to drive through "
                            "the plane, one of: "
                            f"{', '.join(trace_names())}")
    serve.add_argument("--num-sessions", type=int, default=3,
                       metavar="K",
                       help="number of concurrent broadcast channels")
    serve.add_argument("--overlap", type=float, default=0.25,
                       metavar="P",
                       help="probability that a node subscribes to each "
                            "extra session beyond its primary one")
    serve.add_argument("--broker", default="waterfill",
                       help="capacity-broker policy, one of: "
                            f"{', '.join(broker_names())}")
    serve.add_argument("--admission", default="reject",
                       help="policy for sessions below the floor, one "
                            f"of: {', '.join(admission_names())}")
    serve.add_argument("--admission-floor", type=float, default=0.0,
                       metavar="RATE",
                       help="minimum allocated rate bound a session "
                            "needs to be admitted cleanly")
    serve.add_argument("--planning", default="incremental",
                       help="plan lifecycle per session, one of: "
                            f"{', '.join(planner_names())} "
                            "('full' is the cold-solve control arm)")
    serve.add_argument("--repair-tolerance", type=float, default=0.1,
                       metavar="FRAC",
                       help="incremental planning only: maximum fraction "
                            "below optimum a repaired plan may provision "
                            "before a rebuild is forced")
    serve.add_argument("--seed", type=int, default=0,
                       help="fleet + trace seed")
    serve.add_argument("--ledger", default=None, metavar="PATH",
                       help="journal every batch to this reservation "
                            "ledger (JSONL) and verify a bit-identical "
                            "replay after the trace drains")
    serve.add_argument("--transport", default="tcp",
                       choices=["tcp", "inproc"],
                       help="drive the trace over a real asyncio socket "
                            "server on loopback, or through the "
                            "in-process codec round-trip")
    serve.add_argument("--list", action="store_true", dest="list_names",
                       help="list registered scenarios, traces, brokers, "
                            "admission policies and planning modes")

    # The rule list below is read from the live RULES registry at parser
    # build time, matching the CONTROLLERS/PLANNERS/BROKERS convention:
    # a plugin rule shows up in --help and --list immediately.
    from .devtools import rule_names

    lint = sub.add_parser(
        "lint",
        help="determinism & concurrency static analysis (repro.devtools)",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: src tests benchmarks)")
    lint.add_argument("--format", default="text",
                      choices=["text", "json"], dest="lint_format",
                      help="'text' prints compiler-style findings, "
                           "'json' emits the stable repro-lint/1 "
                           "document (the CI artifact)")
    lint.add_argument("--select", nargs="*", default=None, metavar="REPxxx",
                      help="run only these rule codes, one or more of: "
                           f"{', '.join(rule_names())}")
    lint.add_argument("--list", action="store_true", dest="list_names",
                      help="list registered rules with scope and the "
                           "replay guarantee each protects")

    request = sub.add_parser(
        "request",
        help="submit one ad-hoc request to a ledger-backed plane",
    )
    request.add_argument("--ledger", required=True, metavar="PATH",
                         help="reservation ledger to recover the plane "
                              "from (create one with 'serve --ledger'); "
                              "the request is appended to the journal")
    request.add_argument("--op", required=True,
                         choices=["start_session", "stop_session",
                                  "migrate_session", "priority_change",
                                  "query"],
                         help="request type")
    request.add_argument("--name", default=None,
                         help="session name (optional for query: omit "
                              "for a whole-fleet snapshot)")
    request.add_argument("--source-bw", type=float, default=None,
                         help="origin uplink bandwidth (start, or "
                              "re-provision during migrate)")
    request.add_argument("--demand", type=float, default=None,
                         help="demand rate for start_session "
                              "(default: best effort)")
    request.add_argument("--priority", type=float, default=None,
                         help="broker weight (start_session / "
                              "priority_change)")
    request.add_argument("--members", type=int, nargs="*", default=[],
                         metavar="NODE",
                         help="member node ids for start_session")
    request.add_argument("--add", type=int, nargs="*", default=[],
                         dest="add_members", metavar="NODE",
                         help="members to add (migrate_session)")
    request.add_argument("--remove", type=int, nargs="*", default=[],
                         dest="remove_members", metavar="NODE",
                         help="members to remove (migrate_session)")
    request.add_argument("--no-verify", action="store_true",
                         help="skip the bit-identical replay check while "
                              "recovering from the ledger")
    return parser


def _cmd_table1() -> int:
    from .experiments.table1 import render_table1

    print(render_table1())
    return 0


def _cmd_figure7() -> int:
    from .experiments.figure7 import Figure7Config, run_figure7
    from .experiments.report import render_figure7

    print(render_figure7(run_figure7(Figure7Config.from_env())))
    return 0


def _cmd_figure19() -> int:
    from .experiments.figure19 import Figure19Config, run_figure19
    from .experiments.report import render_figure19

    print(render_figure19(run_figure19(Figure19Config.from_env())))
    return 0


def _cmd_worstcase() -> int:
    from .experiments.report import (
        render_figure1,
        render_figure6,
        render_figure18,
        render_theorem61,
        render_theorem63,
    )
    from .experiments.worstcase import (
        figure1_report,
        figure6_report,
        figure18_report,
        theorem61_report,
        theorem63_report,
    )

    print(render_figure1(figure1_report()))
    print()
    print(render_figure6(figure6_report()))
    print()
    print(render_figure18(figure18_report()))
    print()
    print(render_theorem63(theorem63_report()))
    print()
    print(render_theorem61(theorem61_report()))
    return 0


def _cmd_ablations() -> int:
    from .analysis import (
        churn_experiment,
        depth_ablation,
        estimation_gap_experiment,
        perturbation_experiment,
    )
    from .experiments.ablations import (
        baseline_comparison,
        cyclic_gain,
        estimation_ablation,
        greedy_vs_exhaustive,
        packing_degree_ablation,
        repair_tolerance_ablation,
        service_ablation,
        sessions_ablation,
        simulation_backend_ablation,
        source_sensitivity,
    )
    from .experiments.common import format_table
    from .experiments.report import (
        render_baselines,
        render_cyclic_gain,
        render_packing,
    )

    print(
        "greedy vs exhaustive worst relative error: "
        f"{greedy_vs_exhaustive():.2e}"
    )
    print()
    print(render_packing(packing_degree_ablation()))
    print()
    print(render_baselines(baseline_comparison()))
    print()
    print(render_cyclic_gain(cyclic_gain()))
    print()
    rows = depth_ablation()
    print("Depth ablation (FIFO vs min-depth packing, by rate back-off):")
    print(
        format_table(
            ["n", "rate frac", "fifo depth", "min-depth depth",
             "fifo excess", "min-depth excess"],
            [
                [r.size, r.rate_fraction, r.fifo_max_depth,
                 r.depth_aware_max_depth, r.fifo_max_excess,
                 r.depth_aware_max_excess]
                for r in rows
            ],
        )
    )
    print()
    print("Source-saturation sensitivity (b0 = factor * fixed point):")
    print(
        format_table(
            ["factor", "mean ratio", "min ratio"],
            [[r.source_factor, r.mean_ratio, r.min_ratio]
             for r in source_sensitivity()],
        )
    )
    print()
    print("Bandwidth-perturbation robustness (graceful-degradation floor):")
    print(
        format_table(
            ["eps", "planned", "worst delivered", "(1-eps) floor"],
            [[r.eps, r.planned_rate, r.worst_delivered, r.graceful_floor]
             for r in perturbation_experiment()],
        )
    )
    print()
    print("Simulation backends (same overlay, same seed, per-edge loop "
          "vs numpy vs arborescence-sharded):")
    print(
        format_table(
            ["backend", "efficiency", "wall s", "speedup"],
            [[r.backend, f"{r.efficiency:.3f}", f"{r.wall_seconds:.3f}",
              f"{r.speedup:.1f}x"]
             for r in simulation_backend_ablation()],
        )
    )
    print()
    print("Repair-tolerance ablation (incremental planner, steady churn):")
    print(
        format_table(
            ["tolerance", "rebuilds", "repairs", "fallbacks", "mean opt",
             "plan ms"],
            [
                [r.tolerance, r.rebuilds, r.repairs, r.fallbacks,
                 f"{r.mean_optimality:.3f}", f"{1000 * r.plan_seconds:.1f}"]
                for r in repair_tolerance_ablation()
            ],
        )
    )
    print()
    print("Estimation gap (overlay built on probed bandwidths, clipped to "
          "truth; flow-level):")
    print(
        format_table(
            ["probes/node", "sigma", "oracle", "planned", "achieved",
             "gap", "median err"],
            [
                [r.probes_per_node, r.noise_sigma, f"{r.oracle_rate:.2f}",
                 f"{r.planned_rate:.2f}", f"{r.achieved_rate:.2f}",
                 f"{r.gap:.3f}", f"{r.median_rel_error:.3f}"]
                for r in estimation_gap_experiment(
                    budgets=(8.0, 4.0, 1.0), sigmas=(0.05, 0.1, 0.3)
                )
            ],
        )
    )
    print()
    print("Estimation in the loop (steady churn, reactive controller, "
          "oracle vs measured bandwidths):")
    print(
        format_table(
            ["estimation", "probes/node", "mean opt", "mean dlv",
             "probes", "est err"],
            [
                [r.estimation, r.probes_per_node,
                 f"{r.mean_optimality:.3f}", f"{r.mean_delivered:.3f}",
                 r.probes, f"{r.est_error:.3f}"]
                for r in estimation_ablation()
            ],
        )
    )
    print()
    print("Multi-tenant sessions (contended fleet, heterogeneous demands, "
          "per broker policy):")
    print(
        format_table(
            ["broker", "admitted", "aggregate", "ceiling", "fairness",
             "worst sess", "re-arb"],
            [
                [r.broker, f"{r.admitted}/{r.num_sessions}",
                 f"{r.aggregate:.1f}", f"{r.ceiling_sum:.1f}",
                 f"{r.fairness:.3f}", f"{r.worst_session:.1f}",
                 r.rearbitrations]
                for r in sessions_ablation()
            ],
        )
    )
    print()
    print("Control plane (request traces, incremental re-arbitration vs "
          "cold solve):")

    def _opt(value: float) -> str:
        import math as _math

        return "-" if _math.isnan(value) else f"{value:.3f}"

    print(
        format_table(
            ["trace", "broker", "planning", "p50 ms", "p99 ms", "req/s",
             "builds", "repairs", "keeps", "disrupt", "mig good", "speedup"],
            [
                [r.trace, r.broker, r.planning,
                 f"{r.latency_p50_ms:.3f}", f"{r.latency_p99_ms:.3f}",
                 f"{r.requests_per_sec:.0f}", r.builds, r.repairs, r.keeps,
                 _opt(r.preemption_disruption), _opt(r.migration_goodput),
                 f"{r.p50_speedup:.1f}x"]
                for r in service_ablation()
            ],
        )
    )
    print()
    rep = churn_experiment()
    print(
        "Churn: failing the busiest relay mid-stream "
        f"(forwarding {rep.failed_forwarding:.1f}) drops the worst "
        f"survivor goodput from {rep.healthy_min_goodput:.1f} to "
        f"{rep.churn_min_goodput:.1f} ({rep.starved_nodes} starved); "
        f"static re-optimization restores rate {rep.repaired_rate:.1f} "
        f"({100 * rep.repair_ratio:.0f}% of the original)."
    )
    if rep.incremental_repairs:
        print(
            "Repair vs rebuild on the same trace: incremental repair "
            f"reaches {100 * rep.repair_vs_rebuild:.0f}% of the full "
            f"rebuild's post-failure goodput for "
            f"{1000 * rep.repair_plan_seconds:.2f} ms of planning vs "
            f"{1000 * rep.rebuild_plan_seconds:.2f} ms "
            f"({rep.incremental_repairs} delta(s) applied)."
        )
    else:
        print(
            "Repair vs rebuild on the same trace: the busiest relay's "
            "departure exceeded the spare upload credit, so the "
            "incremental planner fell back to a full rebuild "
            f"(goodput parity: {100 * rep.repair_vs_rebuild:.0f}%)."
        )
    return 0


def _cmd_demo() -> int:
    from . import (
        acyclic_guarded_scheme,
        cyclic_optimum,
        figure1_instance,
        optimal_acyclic_throughput,
        scheme_throughput,
    )

    inst = figure1_instance()
    print("Instance:", inst)
    print("T* (Lemma 5.1)   :", cyclic_optimum(inst))
    t, word = optimal_acyclic_throughput(inst)
    print(f"T*_ac (Thm 4.1)  : {t:.6g}  word={word!r}")
    sol = acyclic_guarded_scheme(inst)
    print("overlay:")
    print(sol.scheme.format_edges(inst))
    print("throughput:", scheme_throughput(sol.scheme, inst))
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from . import (
        Instance,
        acyclic_guarded_scheme,
        cyclic_open_scheme,
        cyclic_optimum,
        optimal_acyclic_throughput,
        scheme_throughput,
    )
    from .analysis import scheme_stats

    inst = Instance(args.source, tuple(args.open_bws), tuple(args.guarded_bws))
    print("Instance:", inst)
    print("T* (Lemma 5.1):", cyclic_optimum(inst))
    if args.cyclic:
        if inst.m != 0:
            print(
                "error: --cyclic requires an open-only instance "
                "(Theorem 5.2)",
                file=sys.stderr,
            )
            return 2
        scheme = cyclic_open_scheme(inst, args.rate)
        rate = scheme_throughput(scheme, inst, method="maxflow")
        print(f"Theorem 5.2 cyclic scheme at rate {rate:.6g}:")
    else:
        sol = acyclic_guarded_scheme(inst, args.rate)
        scheme = sol.scheme
        print(
            f"Theorem 4.1 acyclic scheme at rate {sol.throughput:.6g} "
            f"(word {sol.word!r}):"
        )
    print(scheme.format_edges(inst))
    stats = scheme_stats(inst, scheme)
    print(
        f"edges={stats.num_edges} max_degree={stats.max_outdegree} "
        f"degree_excess={stats.max_degree_excess} "
        f"depth={stats.max_depth if stats.max_depth is not None else '-'}"
    )
    return 0


def _cmd_runtime(args: argparse.Namespace) -> int:
    from .experiments.common import format_table
    from .runtime import (
        RuntimeEngine,
        controller_names,
        get_scenario,
        make_controller,
        planner_names,
        run_batch,
        scenario_grid,
        scenario_names,
        summarize_batch,
    )

    if args.list_names:
        print("scenarios  :", ", ".join(scenario_names()))
        print("controllers:", ", ".join(controller_names()))
        print("planners   :", ", ".join(planner_names()))
        return 0

    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.tick < 1:
        print(f"error: --tick must be >= 1, got {args.tick}", file=sys.stderr)
        return 2
    if args.seeds < 1:
        print(f"error: --seeds must be >= 1, got {args.seeds}", file=sys.stderr)
        return 2
    if args.controller not in controller_names():
        print(
            f"error: unknown controller {args.controller!r} "
            f"(known: {', '.join(controller_names())})",
            file=sys.stderr,
        )
        return 2
    if args.planner is not None and args.planner not in planner_names():
        print(
            f"error: unknown planner {args.planner!r} "
            f"(known: {', '.join(planner_names())})",
            file=sys.stderr,
        )
        return 2
    if args.repair_tolerance is not None and not (
        0.0 <= args.repair_tolerance < 1.0
    ):
        print(
            f"error: --repair-tolerance must be in [0, 1), "
            f"got {args.repair_tolerance}",
            file=sys.stderr,
        )
        return 2
    # The tolerance only reaches the incremental planner.  In --batch
    # mode the sweep always includes the incremental policy, so it is
    # never dead; a single run must actually resolve that planner.
    if args.repair_tolerance is not None and not args.batch and not (
        args.planner == "incremental"
        or (args.planner is None and args.controller == "incremental")
    ):
        print(
            "error: --repair-tolerance applies to the 'incremental' planner "
            "(pass --planner incremental or --controller incremental)",
            file=sys.stderr,
        )
        return 2
    if args.probes_per_node < 0:
        print(
            f"error: --probes-per-node must be >= 0, "
            f"got {args.probes_per_node}",
            file=sys.stderr,
        )
        return 2
    if args.noise_sigma < 0:
        print(
            f"error: --noise-sigma must be >= 0, got {args.noise_sigma}",
            file=sys.stderr,
        )
        return 2
    if not 0.0 < args.estimator_decay <= 1.0:
        print(
            f"error: --estimator-decay must be in (0, 1], "
            f"got {args.estimator_decay}",
            file=sys.stderr,
        )
        return 2
    if args.estimator_warmstart and args.estimation != "online":
        print(
            "error: --estimator-warmstart requires --estimation online",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if (
        not args.batch
        and args.workers is not None
        and args.workers > 1
        and args.sim_backend not in ("sharded", "auto")
    ):
        print(
            f"error: --workers {args.workers} requires --sim-backend "
            f"sharded (or auto): the {args.sim_backend!r} backend is "
            f"single-threaded (worker parallelism comes from simulating "
            f"the overlay's arborescences independently)",
            file=sys.stderr,
        )
        return 2
    if not 0.0 <= args.plan_slack < 1.0:
        print(
            f"error: --plan-slack must be in [0, 1), got {args.plan_slack}",
            file=sys.stderr,
        )
        return 2
    if args.sim_worker_mode is not None and args.sim_backend not in (
        "sharded",
        "auto",
    ):
        print(
            f"error: --sim-worker-mode applies to the sharded backend "
            f"(pass --sim-backend sharded or auto, not "
            f"{args.sim_backend!r})",
            file=sys.stderr,
        )
        return 2
    if args.profile and args.batch:
        print(
            "error: --profile applies to a single run, not --batch sweeps",
            file=sys.stderr,
        )
        return 2

    if args.batch:
        seeds = range(args.seed, args.seed + args.seeds)
        jobs = scenario_grid(
            [args.scenario],
            controller_names(),
            seeds=seeds,
            controller_kwargs={"periodic": {"period": args.period}},
            engine_kwargs={
                "min_epoch_slots": args.tick,
                "estimator_warmstart": args.estimator_warmstart,
                "plan_slack": args.plan_slack,
                "sim_worker_mode": args.sim_worker_mode,
            },
            sim_backend=args.sim_backend,
            warm_epochs=args.warm_epochs,
            planner=args.planner,
            repair_tolerance=args.repair_tolerance,
            estimation=args.estimation,
            probes_per_node=args.probes_per_node,
            estimator_decay=args.estimator_decay,
            noise_sigma=args.noise_sigma,
        )
        print(
            f"sweep: {args.scenario} x {{{', '.join(controller_names())}}} "
            f"x seeds {seeds.start}..{seeds.stop - 1} ({len(jobs)} runs; "
            f"--controller is ignored, every policy is swept)"
        )
        print(summarize_batch(run_batch(jobs, max_workers=args.workers)))
        return 0

    kwargs = {"period": args.period} if args.controller == "periodic" else {}
    try:
        controller = make_controller(args.controller, **kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    run = spec.build(args.seed, name=args.scenario)
    print(
        f"scenario {args.scenario!r}: {run.platform.num_alive} receivers, "
        f"{len(run.events)} events over {run.horizon} slots; "
        f"controller {args.controller!r}, seed {args.seed}"
    )
    try:
        engine = RuntimeEngine(
            run.platform,
            run.events,
            run.horizon,
            seed=args.seed,
            min_epoch_slots=args.tick,
            sim_backend=args.sim_backend,
            warm_epochs=args.warm_epochs,
            sim_workers=args.workers,
            sim_worker_mode=args.sim_worker_mode,
            planner=args.planner,
            repair_tolerance=args.repair_tolerance,
            plan_slack=args.plan_slack,
            estimation=args.estimation,
            probes_per_node=args.probes_per_node,
            estimator_decay=args.estimator_decay,
            noise_sigma=args.noise_sigma,
            estimator_warmstart=args.estimator_warmstart,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = engine.run(controller)
    print(
        format_table(
            ["epoch", "slots", "alive", "planned", "T*_ac", "min goodput",
             "delivered", "starved", "plan"],
            [
                [
                    f"{e.start}-{e.end}", e.slots, e.num_alive,
                    f"{e.planned_rate:.3f}", f"{e.optimal_rate:.3f}",
                    f"{e.min_goodput:.3f}", f"{e.delivered_fraction:.2f}",
                    e.starved, e.plan_op if e.rebuilt else "-",
                ]
                for e in result.epochs
            ],
        )
    )
    latency = (
        "-"
        if result.mean_repair_latency is None
        else f"{result.mean_repair_latency:.1f} slots"
    )
    print(
        f"planner={result.planner}  "
        f"rebuilds={result.rebuilds}  "
        f"repairs={result.repairs} "
        f"(fallbacks={result.repair_fallbacks})  "
        f"mean delivered={result.mean_delivered_fraction:.3f}  "
        f"mean vs T*_ac={result.mean_optimality_fraction:.3f}  "
        f"repair latency={latency}  "
        f"plan time={1000 * result.plan_seconds:.1f} ms  "
        f"overlay cache={result.cache_hits}/"
        f"{result.cache_hits + result.cache_misses}"
    )
    if args.profile:
        phases = result.phase_seconds
        total = sum(phases.values())
        denom = total if total > 0 else 1.0
        print(
            "profile: "
            + "  ".join(
                f"{name}={1000 * secs:.1f}ms ({100 * secs / denom:.0f}%)"
                for name, secs in phases.items()
            )
            + f"  total={1000 * total:.1f}ms"
        )
    if result.estimation == "online":
        err = result.mean_estimation_error
        print(
            f"estimation=online  probes={result.probes} "
            f"({args.probes_per_node:g}/node/epoch, "
            f"sigma={args.noise_sigma:g})  "
            f"mean est error="
            f"{'-' if err is None else f'{err:.3f}'}"
        )
    return 0


def _cmd_sessions(args: argparse.Namespace) -> int:
    import math

    from .experiments.common import format_table
    from .runtime import controller_names, scenario_names
    from .sessions import (
        FleetEngine,
        admission_names,
        broker_names,
        make_fleet,
    )

    if args.list_names:
        print("scenarios :", ", ".join(scenario_names()))
        print("controllers:", ", ".join(controller_names()))
        print("brokers   :", ", ".join(broker_names()))
        print("admissions:", ", ".join(admission_names()))
        return 0

    if args.num_sessions < 1:
        print(
            f"error: --num-sessions must be >= 1, got {args.num_sessions}",
            file=sys.stderr,
        )
        return 2
    if not 0.0 <= args.overlap <= 1.0:
        print(
            f"error: --overlap must be in [0, 1], got {args.overlap}",
            file=sys.stderr,
        )
        return 2
    if args.broker not in broker_names():
        print(
            f"error: unknown broker {args.broker!r} "
            f"(known: {', '.join(broker_names())})",
            file=sys.stderr,
        )
        return 2
    if args.admission not in admission_names():
        print(
            f"error: unknown admission policy {args.admission!r} "
            f"(known: {', '.join(admission_names())})",
            file=sys.stderr,
        )
        return 2
    if args.admission_floor < 0:
        print(
            f"error: --admission-floor must be >= 0, "
            f"got {args.admission_floor}",
            file=sys.stderr,
        )
        return 2
    if args.demand is not None and not args.demand > 0:
        print(
            f"error: --demand must be > 0, got {args.demand}",
            file=sys.stderr,
        )
        return 2
    if args.controller not in controller_names():
        print(
            f"error: unknown controller {args.controller!r} "
            f"(known: {', '.join(controller_names())})",
            file=sys.stderr,
        )
        return 2
    if args.probes_per_node < 0:
        print(
            f"error: --probes-per-node must be >= 0, "
            f"got {args.probes_per_node}",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2

    try:
        fleet = make_fleet(
            args.scenario,
            args.num_sessions,
            args.seed,
            overlap=args.overlap,
            demand=math.inf if args.demand is None else args.demand,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(
        f"fleet {args.scenario!r}: {fleet.platform.num_alive} shared "
        f"receivers, {args.num_sessions} sessions (overlap "
        f"{args.overlap:g}), {len(fleet.events)} events over "
        f"{fleet.horizon} slots; broker {args.broker!r}, admission "
        f"{args.admission!r} (floor {args.admission_floor:g}), "
        f"controller {args.controller!r}, seed {args.seed}"
    )
    engine = FleetEngine.from_fleet(
        fleet,
        broker=args.broker,
        admission=args.admission,
        admission_floor=args.admission_floor,
        controller=args.controller,
        estimation=args.estimation,
        probes_per_node=args.probes_per_node,
    )
    result = engine.run(mode=args.mode, max_workers=args.workers)
    print(
        format_table(
            ["session", "status", "members", "alloc bound", "solo bound",
             "goodput", "delivered", "rebuilds", "repairs"],
            [
                [
                    s.name, s.status,
                    f"{s.initial_members}->{s.final_alive}",
                    f"{s.bound:.2f}", f"{s.solo_bound:.2f}",
                    f"{s.goodput:.2f}",
                    "-" if s.result is None
                    else f"{s.result.mean_delivered_fraction:.3f}",
                    "-" if s.result is None else s.result.rebuilds,
                    "-" if s.result is None else s.result.repairs,
                ]
                for s in result.sessions
            ],
        )
    )
    ceiling = result.bound_sum
    print(
        f"aggregate goodput={result.aggregate_goodput:.2f} "
        f"(ceiling {ceiling:.2f}"
        + (
            f", {result.aggregate_goodput / ceiling:.0%}"
            if math.isfinite(ceiling) and ceiling > 0
            else ""
        )
        + f")  fairness={result.fairness:.3f}  "
        f"admitted={len(result.admitted)}/{len(result.sessions)}  "
        f"re-arbitrations={result.rearbitrations}"
    )
    if args.estimation == "online":
        print(
            f"estimation=online  probes={result.total_probes} "
            f"(fleet budget {args.probes_per_node:g}/node amortized to "
            f"{result.probes_per_node:.2f}/node/session)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from collections import Counter

    from .experiments.common import format_table
    from .planning import planner_names
    from .runtime import scenario_names
    from .service import (
        ControlPlane,
        ControlPlaneClient,
        ControlPlaneServer,
        InProcessTransport,
        ReservationLedger,
        make_trace,
        trace_names,
    )
    from .sessions import admission_names, broker_names, make_fleet

    if args.list_names:
        print("scenarios :", ", ".join(scenario_names()))
        print("traces    :", ", ".join(trace_names()))
        print("brokers   :", ", ".join(broker_names()))
        print("admissions:", ", ".join(admission_names()))
        print("planning  :", ", ".join(planner_names()))
        return 0

    if args.num_sessions < 1:
        print(
            f"error: --num-sessions must be >= 1, got {args.num_sessions}",
            file=sys.stderr,
        )
        return 2
    if not 0.0 <= args.overlap <= 1.0:
        print(
            f"error: --overlap must be in [0, 1], got {args.overlap}",
            file=sys.stderr,
        )
        return 2
    if not 0.0 <= args.repair_tolerance < 1.0:
        print(
            f"error: --repair-tolerance must be in [0, 1), "
            f"got {args.repair_tolerance}",
            file=sys.stderr,
        )
        return 2

    try:
        fleet = make_fleet(
            args.scenario, args.num_sessions, args.seed, overlap=args.overlap
        )
        batches = make_trace(args.trace, fleet, seed=args.seed)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    ledger = ReservationLedger(args.ledger)
    try:
        plane = ControlPlane(
            fleet.platform,
            broker=args.broker,
            admission=args.admission,
            admission_floor=args.admission_floor,
            planning=args.planning,
            repair_tolerance=args.repair_tolerance,
            seed=args.seed,
            ledger=ledger,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"plane: {fleet.platform.num_alive} shared receivers, trace "
        f"{args.trace!r} ({len(batches)} batches), broker {args.broker!r}, "
        f"planning {args.planning!r}, transport {args.transport}, "
        f"seed {args.seed}"
    )

    statuses: Counter = Counter()
    if args.transport == "tcp":

        async def drive() -> None:
            async with ControlPlaneServer(plane) as server:
                client = ControlPlaneClient(port=server.port)
                async with client:
                    for batch in batches:
                        for resp in await client.submit_batch(batch):
                            statuses[resp.status] += 1

        asyncio.run(drive())
    else:
        transport = InProcessTransport(plane)
        for batch in batches:
            for resp in transport.submit_batch(batch):
                statuses[resp.status] += 1

    print(
        format_table(
            ["session", "status", "members", "granted", "bound",
             "priority", "builds", "repairs"],
            [
                [
                    name, entry.status, len(entry.spec.members),
                    f"{math.fsum(entry.grants.values()):.2f}",
                    f"{entry.bound:.2f}", f"{entry.spec.priority:g}",
                    entry.builds, entry.repairs,
                ]
                for name, entry in sorted(plane.sessions.items())
            ],
        )
    )
    s = plane.stats()
    outcome = ", ".join(f"{k}={v}" for k, v in sorted(statuses.items()))
    print(
        f"requests={s.requests} ({outcome})  batches={s.batches}  "
        f"p50={s.latency_p50_ms:.3f} ms  p99={s.latency_p99_ms:.3f} ms  "
        f"{s.requests_per_sec:.0f} req/s"
    )
    print(
        f"plans: builds={s.builds} repairs={s.repairs} "
        f"(fallbacks={s.fallbacks}) keeps={s.keeps}  "
        f"arbitration memo {s.arb_hits}/{s.arb_hits + s.arb_misses}"
    )
    if args.ledger:
        ledger.close()
        ControlPlane.recover(args.ledger, resume_appending=False)
        print(
            f"ledger: {len(ledger.records)} records at {args.ledger}; "
            f"replay verified bit-identical"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools import (
        DEFAULT_PATHS,
        RULES,
        render_json,
        render_text,
        rule_names,
        run_lint,
    )

    if args.list_names:
        print("rules     :", ", ".join(rule_names()))
        for code in rule_names():
            cls = RULES[code]
            scope = (
                ", ".join(cls.include) if cls.include else "all linted paths"
            )
            print(f"  {code} {cls.name}: {cls.summary}")
            print(f"    protects: {cls.guarantee}")
            print(f"    scope   : {scope}")
        return 0

    try:
        report = run_lint(args.paths or DEFAULT_PATHS, select=args.select)
    except (FileNotFoundError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.lint_format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.clean else 1


def _cmd_request(args: argparse.Namespace) -> int:
    import json
    import math

    from .service import (
        ControlPlane,
        MigrateSession,
        PriorityChange,
        Query,
        StartSession,
        StopSession,
    )

    if args.op != "query" and not args.name:
        print(f"error: --op {args.op} requires --name", file=sys.stderr)
        return 2
    if args.op == "start_session":
        if args.source_bw is None:
            print(
                "error: --op start_session requires --source-bw",
                file=sys.stderr,
            )
            return 2
        req = StartSession(
            name=args.name,
            source_bw=args.source_bw,
            demand=math.inf if args.demand is None else args.demand,
            priority=1.0 if args.priority is None else args.priority,
            members=tuple(args.members),
        )
    elif args.op == "stop_session":
        req = StopSession(name=args.name)
    elif args.op == "migrate_session":
        if not (args.add_members or args.remove_members
                or args.source_bw is not None):
            print(
                "error: --op migrate_session requires --add, --remove "
                "and/or --source-bw",
                file=sys.stderr,
            )
            return 2
        req = MigrateSession(
            name=args.name,
            add=tuple(args.add_members),
            remove=tuple(args.remove_members),
            source_bw=args.source_bw,
        )
    elif args.op == "priority_change":
        if args.priority is None:
            print(
                "error: --op priority_change requires --priority",
                file=sys.stderr,
            )
            return 2
        req = PriorityChange(name=args.name, priority=args.priority)
    else:
        req = Query(name=args.name)

    try:
        plane = ControlPlane.recover(args.ledger, verify=not args.no_verify)
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    resp = plane.submit(req)
    if plane.ledger is not None:
        plane.ledger.close()
    if resp.status == "error":
        print(f"error: {resp.error}", file=sys.stderr)
        return 1
    print(
        f"{resp.op} {resp.name!r}: {resp.status}  bound={resp.bound:.3f}  "
        f"seq={resp.seq}  ({resp.latency_ms:.3f} ms)"
    )
    if resp.state is not None:
        print(json.dumps(resp.state, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "full", False):
        os.environ["REPRO_FULL"] = "1"
    dispatch = {
        "table1": _cmd_table1,
        "figure7": _cmd_figure7,
        "figure19": _cmd_figure19,
        "worstcase": _cmd_worstcase,
        "ablations": _cmd_ablations,
        "demo": _cmd_demo,
    }
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "runtime":
        return _cmd_runtime(args)
    if args.command == "sessions":
        return _cmd_sessions(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "request":
        return _cmd_request(args)
    return dispatch[args.command]()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
