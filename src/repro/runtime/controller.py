"""Controller policies: when does the tracker re-run the optimizer?

The engine is deliberately policy-free; everything about *when* to pay
for a re-optimization lives here.  Three built-in policies span the
design space the paper's conclusion gestures at:

* :class:`StaticController` — the paper's setting: optimize once, never
  repair.  Under churn this starves every peer downstream of a departure
  (the baseline the other policies are measured against).
* :class:`PeriodicController` — a tracker on a timer: rebuild every
  ``period`` slots whether or not anything changed.  Bounded staleness,
  bounded (amortized) optimization cost, no event feed required.
* :class:`ReactiveController` — event-triggered repair: rebuild as soon
  as membership changes (departures always; arrivals optionally), go
  back to sleep otherwise.
* :class:`IncrementalController` — event-triggered like the reactive
  policy, but routed through the engine's *replan* seam: the injected
  planner (:class:`~repro.planning.IncrementalRepairPlanner` by default)
  patches the surviving overlay locally and only falls back to a full
  rebuild past its degradation tolerance.

Controllers decide *when* the overlay changes; *how* a plan is produced
lives in :mod:`repro.planning` behind the engine's planner seam.  Custom
policies subclass :class:`Controller` (three small hooks) and can be
registered by name in :data:`CONTROLLERS` so the CLI and the batch
runner can spawn them from picklable specs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from .events import BandwidthDrift, Event, NodeJoin, NodeLeave

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planning import Plan
    from .engine import RuntimeEngine

__all__ = [
    "Controller",
    "StaticController",
    "PeriodicController",
    "ReactiveController",
    "IncrementalController",
    "CONTROLLERS",
    "make_controller",
    "controller_names",
]


class Controller:
    """Base policy: build the initial overlay, then never touch it.

    Subclasses override :meth:`on_change` (react to applied events) and
    optionally :meth:`wake_after` (request an epoch boundary even when no
    event is pending — how the periodic policy gets its timer).
    """

    name = "base"

    def start(self, engine: "RuntimeEngine") -> "Plan":
        """Initial overlay for the starting population."""
        return engine.build_plan()

    def wake_after(self, now: int) -> Optional[int]:
        """Next self-scheduled wake-up slot strictly after ``now``."""
        return None

    def on_change(
        self, engine: "RuntimeEngine", events: tuple[Event, ...]
    ) -> Optional["Plan"]:
        """React to events applied at ``engine.now``.

        Return a new :class:`~repro.runtime.engine.Plan` to install it,
        or ``None`` to keep the current overlay.
        """
        return None


class StaticController(Controller):
    """No repair, ever — the paper's static overlay under churn."""

    name = "static"


class PeriodicController(Controller):
    """Rebuild on a fixed timer, blind to the event feed."""

    name = "periodic"

    def __init__(self, period: int = 120) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = int(period)
        self._last_built = 0

    def start(self, engine: "RuntimeEngine") -> "Plan":
        self._last_built = engine.now
        return engine.build_plan()

    def wake_after(self, now: int) -> Optional[int]:
        return self._last_built + self.period

    def on_change(
        self, engine: "RuntimeEngine", events: tuple[Event, ...]
    ) -> Optional["Plan"]:
        if engine.now - self._last_built < self.period:
            return None
        self._last_built = engine.now
        return engine.build_plan()


class ReactiveController(Controller):
    """Rebuild the instant membership changes; sleep otherwise.

    ``on_leave``/``on_join``/``on_drift`` select which event classes
    trigger a repair (departures by default — the catastrophic case —
    plus arrivals, so flash crowds get served; drift repair is opt-in
    because a sine wobble would otherwise rebuild every sample).
    """

    name = "reactive"

    def __init__(
        self,
        *,
        on_leave: bool = True,
        on_join: bool = True,
        on_drift: bool = False,
    ) -> None:
        self.on_leave = on_leave
        self.on_join = on_join
        self.on_drift = on_drift

    def _triggers(self, event: Event) -> bool:
        if isinstance(event, NodeLeave):
            return self.on_leave
        if isinstance(event, NodeJoin):
            return self.on_join
        if isinstance(event, BandwidthDrift):
            return self.on_drift
        return False

    def on_change(
        self, engine: "RuntimeEngine", events: tuple[Event, ...]
    ) -> Optional["Plan"]:
        if any(self._triggers(ev) for ev in events):
            return engine.build_plan()
        return None


class IncrementalController(ReactiveController):
    """Event-triggered *repair* through the engine's planner seam.

    Same trigger logic as :class:`ReactiveController`, but instead of
    demanding a fresh full build the policy hands the applied events to
    :meth:`~repro.runtime.engine.RuntimeEngine.replan`, letting the
    injected planner patch the live overlay (or fall back to a rebuild).
    Drift triggers default to *on* here — repairs are cheap, and feeding
    drift to the planner keeps its overlay model's bandwidths in sync.
    """

    name = "incremental"

    def __init__(
        self,
        *,
        on_leave: bool = True,
        on_join: bool = True,
        on_drift: bool = True,
    ) -> None:
        super().__init__(on_leave=on_leave, on_join=on_join, on_drift=on_drift)

    def on_change(
        self, engine: "RuntimeEngine", events: tuple[Event, ...]
    ) -> Optional["Plan"]:
        if any(self._triggers(ev) for ev in events):
            return engine.replan(events)
        return None


#: Name -> factory registry (picklable job specs carry the name plus
#: keyword arguments, so batch workers can rebuild the policy locally).
CONTROLLERS: Dict[str, Callable[..., Controller]] = {
    StaticController.name: StaticController,
    PeriodicController.name: PeriodicController,
    ReactiveController.name: ReactiveController,
    IncrementalController.name: IncrementalController,
}


def make_controller(name: str, **kwargs) -> Controller:
    """Instantiate a registered policy by name."""
    try:
        factory = CONTROLLERS[name]
    except KeyError:
        known = ", ".join(sorted(CONTROLLERS))
        raise KeyError(f"unknown controller {name!r} (known: {known})") from None
    return factory(**kwargs)


def controller_names() -> list[str]:
    return sorted(CONTROLLERS)
