"""Parallel batch runner: fan a scenario grid across workers.

Large sweeps (every scenario x every controller x many seeds) are
embarrassingly parallel: each job is a self-contained, seeded engine run.
:func:`run_batch` fans a job list across ``concurrent.futures`` workers —
processes by default (the optimizer is pure Python, so real sweeps want
real cores), threads or in-process serial execution on request — and
returns condensed :class:`RunSummary` rows in job order.

Jobs are plain picklable dataclasses: the scenario travels as its frozen
spec, the controller (and planner) as registry names plus keyword
arguments, so a worker process can rebuild everything locally.  Every
worker keeps one module-level :class:`~repro.planning.PlanCache` shared
across all jobs it executes: scenario grids re-solve the same canonical
instances constantly (the same base swarm under every controller, the
same post-departure population at different seeds), and the LRU cache
turns those repeats into lookups.

Results are bit-identical across execution modes — parallelism changes
completion order, never the per-job RNG streams — which the test suite
asserts.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Union

from ..planning import PlanCache
from .controller import make_controller
from .engine import RunResult, RuntimeEngine
from .scenarios import Scenario, get_scenario
from ..experiments.common import format_table

__all__ = [
    "BatchJob",
    "RunSummary",
    "run_job",
    "run_batch",
    "scenario_grid",
    "summarize_batch",
]


@dataclass(frozen=True)
class BatchJob:
    """One engine run: scenario x controller x seed (picklable).

    ``fleet_kwargs`` switches the job into multi-tenant mode: the worker
    builds a :func:`~repro.sessions.make_fleet` workload from the
    scenario and drives a :class:`~repro.sessions.FleetEngine` (the
    sessions run serially inside the job — the pool already parallelizes
    across jobs) instead of a single :class:`RuntimeEngine`.
    """

    scenario: Union[str, Scenario]  #: registry name or inline spec
    controller: str  #: controller registry name
    seed: int = 0
    controller_kwargs: tuple = ()  #: sorted (key, value) pairs
    engine_kwargs: tuple = ()  #: sorted (key, value) pairs for RuntimeEngine
    label: str = ""
    fleet_kwargs: tuple = ()  #: sorted pairs; non-empty = multi-tenant job

    @classmethod
    def make(
        cls,
        scenario: Union[str, Scenario],
        controller: str,
        seed: int = 0,
        *,
        label: str = "",
        engine_kwargs: Optional[dict] = None,
        fleet_kwargs: Optional[dict] = None,
        **controller_kwargs,
    ) -> "BatchJob":
        return cls(
            scenario=scenario,
            controller=controller,
            seed=seed,
            controller_kwargs=tuple(sorted(controller_kwargs.items())),
            engine_kwargs=tuple(sorted((engine_kwargs or {}).items())),
            label=label,
            fleet_kwargs=tuple(sorted((fleet_kwargs or {}).items())),
        )

    @property
    def scenario_name(self) -> str:
        if isinstance(self.scenario, str):
            return self.scenario
        return self.label or type(self.scenario).__name__


@dataclass(frozen=True)
class RunSummary:
    """Condensed outcome of one batch job (cheap to collect and compare).

    ``wall_time`` is measurement noise, so it is excluded from equality —
    summaries of the same job are ``==`` across executors and repeats.
    """

    scenario: str
    controller: str
    seed: int
    horizon: int
    num_epochs: int
    rebuilds: int
    mean_delivered: float
    worst_delivered: float
    mean_optimality: float
    mean_repair_latency: Optional[float]
    final_alive: int
    planner: str = "full"
    repairs: int = 0  #: incremental deltas applied instead of rebuilds
    repair_fallbacks: int = 0  #: repair attempts that fell back to a build
    estimation: str = "oracle"  #: bandwidth feed the controllers planned on
    probes: int = 0  #: pairwise probes the run paid for
    #: Slot-weighted mean of per-epoch median estimation errors (None in
    #: oracle mode).  Probe values are seeded per pair, so this is as
    #: deterministic as the measurements and participates in equality.
    estimation_error: Optional[float] = None
    #: Multi-tenant columns (zero / None on single-session jobs).
    sessions: int = 0  #: sessions the fleet declared
    admitted: int = 0  #: sessions that passed admission control
    broker: str = ""  #: capacity-broker policy the fleet ran under
    fleet_goodput: Optional[float] = None  #: aggregate mean session rate
    fairness: Optional[float] = None  #: Jain index, ceiling-normalized
    #: Cache traffic this job generated.  Excluded from equality along
    #: with the wall times: the warm state of a worker's cache depends on
    #: which jobs it happened to run before this one, so these vary
    #: across execution modes while every *measurement* stays identical.
    cache_hits: int = field(default=0, compare=False)
    cache_misses: int = field(default=0, compare=False)
    wall_time: float = field(default=0.0, compare=False)
    plan_seconds: float = field(default=0.0, compare=False)

    @classmethod
    def from_result(
        cls, job: BatchJob, result: RunResult, wall_time: float, final_alive: int
    ) -> "RunSummary":
        return cls(
            scenario=job.scenario_name,
            controller=job.controller,
            seed=job.seed,
            horizon=result.horizon,
            num_epochs=len(result.epochs),
            rebuilds=result.rebuilds,
            mean_delivered=round(result.mean_delivered_fraction, 9),
            worst_delivered=round(result.worst_delivered_fraction, 9),
            mean_optimality=round(result.mean_optimality_fraction, 9),
            mean_repair_latency=(
                None
                if result.mean_repair_latency is None
                else round(result.mean_repair_latency, 6)
            ),
            final_alive=final_alive,
            planner=result.planner,
            repairs=result.repairs,
            repair_fallbacks=result.repair_fallbacks,
            estimation=result.estimation,
            probes=result.probes,
            estimation_error=(
                None
                if result.mean_estimation_error is None
                else round(result.mean_estimation_error, 9)
            ),
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            wall_time=wall_time,
            plan_seconds=result.plan_seconds,
        )

    @classmethod
    def from_fleet(
        cls, job: BatchJob, fleet_result, wall_time: float
    ) -> "RunSummary":
        """Condense a :class:`~repro.sessions.FleetResult` into one row.

        Per-run aggregates are fleet-wide sums (rebuilds, repairs,
        probes, epochs, alive peers); the quality fractions are plain
        means over the admitted sessions, and the fleet's own metrics
        (aggregate goodput, fairness, admission) land in the dedicated
        multi-tenant columns.
        """
        runs = [s.result for s in fleet_result.admitted if s.result]
        latencies = [lat for r in runs for lat in r.repair_latencies]
        errors = [
            r.mean_estimation_error
            for r in runs
            if r.mean_estimation_error is not None
        ]

        def mean(values: list[float]) -> float:
            # An all-rejected fleet delivered *nothing*: 0.0, never the
            # single-run "no epochs" convention of 1.0.
            return sum(values) / len(values) if values else 0.0

        return cls(
            scenario=job.scenario_name,
            controller=job.controller,
            seed=job.seed,
            horizon=fleet_result.horizon,
            num_epochs=sum(len(r.epochs) for r in runs),
            rebuilds=sum(r.rebuilds for r in runs),
            mean_delivered=round(
                mean([r.mean_delivered_fraction for r in runs]), 9
            ),
            worst_delivered=round(
                min(
                    (r.worst_delivered_fraction for r in runs),
                    default=0.0,
                ),
                9,
            ),
            mean_optimality=round(
                mean([r.mean_optimality_fraction for r in runs]), 9
            ),
            mean_repair_latency=(
                round(sum(latencies) / len(latencies), 6)
                if latencies
                else None
            ),
            final_alive=sum(s.final_alive for s in fleet_result.admitted),
            planner=runs[0].planner if runs else "full",
            repairs=sum(r.repairs for r in runs),
            repair_fallbacks=sum(r.repair_fallbacks for r in runs),
            estimation=runs[0].estimation if runs else "oracle",
            probes=sum(r.probes for r in runs),
            estimation_error=(
                round(sum(errors) / len(errors), 9) if errors else None
            ),
            sessions=len(fleet_result.sessions),
            admitted=len(fleet_result.admitted),
            broker=fleet_result.broker,
            fleet_goodput=round(fleet_result.aggregate_goodput, 9),
            fairness=round(fleet_result.fairness, 9),
            cache_hits=sum(r.cache_hits for r in runs),
            cache_misses=sum(r.cache_misses for r in runs),
            wall_time=wall_time,
            plan_seconds=sum(r.plan_seconds for r in runs),
        )


#: One overlay memo per worker, shared across the jobs that worker runs.
#: Thread-local so concurrent jobs in ``mode="thread"`` never race on the
#: counters (and per-job hit/miss deltas stay attributable): a pool
#: thread — like a pool process — runs its jobs sequentially against its
#: own cache.
_WORKER_STATE = threading.local()


def _worker_cache() -> PlanCache:
    cache = getattr(_WORKER_STATE, "cache", None)
    if cache is None:
        cache = _WORKER_STATE.cache = PlanCache()
    return cache


def _run_fleet_job(job: BatchJob, started: float) -> RunSummary:
    """Multi-tenant flavor of :func:`run_job`: one fleet per job.

    The sessions run serially inside the job against the worker's
    shared :class:`PlanCache` — so a seed sweep replaying the same
    fleet failure hits both the Theorem 4.1 memo and the delta-keyed
    repair memo across jobs, exactly like single-tenant sweeps do.
    Deferred imports keep :mod:`repro.runtime` loadable without the
    sessions subsystem being imported eagerly everywhere.
    """
    from ..sessions import FleetEngine, make_fleet

    cache = _worker_cache()
    hits0, misses0 = cache.stats()
    fleet_kwargs = dict(job.fleet_kwargs)
    fleet = make_fleet(
        job.scenario,
        fleet_kwargs.pop("sessions"),
        job.seed,
        overlap=fleet_kwargs.pop("overlap", 0.0),
        demand=fleet_kwargs.pop("session_demand", float("inf")),
        name=job.scenario_name,
    )
    result = FleetEngine.from_fleet(
        fleet,
        controller=job.controller,
        controller_kwargs=dict(job.controller_kwargs),
        cache=cache,
        **fleet_kwargs,
        **dict(job.engine_kwargs),
    ).run(mode="serial")
    summary = RunSummary.from_fleet(
        job, result, wall_time=time.perf_counter() - started  # repro: noqa REP002 -- wall_time telemetry in RunSummary; never feeds replayed decisions
    )
    hits1, misses1 = cache.stats()
    # Per-session RunResults read the *cumulative* shared counters;
    # report this job's own traffic instead, like the single-run path.
    return dataclasses.replace(
        summary, cache_hits=hits1 - hits0, cache_misses=misses1 - misses0
    )


def run_job(job: BatchJob) -> RunSummary:
    """Execute one job start to finish (top-level: picklable for pools)."""
    started = time.perf_counter()  # repro: noqa REP002 -- wall_time telemetry in RunSummary; never feeds replayed decisions
    if job.fleet_kwargs:
        return _run_fleet_job(job, started)
    cache = _worker_cache()
    hits0, misses0 = cache.stats()
    spec = (
        get_scenario(job.scenario)
        if isinstance(job.scenario, str)
        else job.scenario
    )
    run = spec.build(job.seed, name=job.scenario_name)
    engine = RuntimeEngine(
        run.platform,
        run.events,
        run.horizon,
        seed=job.seed,
        cache=cache,
        **dict(job.engine_kwargs),
    )
    controller = make_controller(job.controller, **dict(job.controller_kwargs))
    result = engine.run(controller)
    result.scenario = run.name
    summary = RunSummary.from_result(
        job,
        result,
        wall_time=time.perf_counter() - started,  # repro: noqa REP002 -- wall_time telemetry in RunSummary; never feeds replayed decisions
        final_alive=run.platform.num_alive,
    )
    hits1, misses1 = cache.stats()
    return dataclasses.replace(
        summary, cache_hits=hits1 - hits0, cache_misses=misses1 - misses0
    )


def run_batch(
    jobs: Sequence[BatchJob],
    *,
    max_workers: Optional[int] = None,
    mode: str = "process",
) -> list[RunSummary]:
    """Run every job; results come back in job order.

    ``mode`` is ``"process"`` (default — real parallelism),
    ``"thread"`` (cheaper spawn, GIL-bound), or ``"serial"``
    (in-process, the debugging fallback).
    """
    jobs = list(jobs)
    if mode == "serial" or len(jobs) <= 1:
        return [run_job(job) for job in jobs]
    if mode == "process":
        pool_cls = ProcessPoolExecutor
    elif mode == "thread":
        pool_cls = ThreadPoolExecutor
    else:
        raise ValueError(
            f"mode must be 'process', 'thread' or 'serial', got {mode!r}"
        )
    with pool_cls(max_workers=max_workers) as pool:
        return list(pool.map(run_job, jobs))


def scenario_grid(
    scenarios: Iterable[Union[str, Scenario]],
    controllers: Iterable[str],
    seeds: Iterable[int] = (0,),
    *,
    controller_kwargs: Optional[Dict[str, dict]] = None,
    engine_kwargs: Optional[dict] = None,
    sim_backend: Optional[str] = None,
    warm_epochs: Optional[bool] = None,
    planner: Optional[str] = None,
    repair_tolerance: Optional[float] = None,
    estimation: Optional[str] = None,
    probes_per_node: Optional[float] = None,
    estimator_decay: Optional[float] = None,
    noise_sigma: Optional[float] = None,
    sessions: Optional[int] = None,
    broker: Optional[str] = None,
    overlap: Optional[float] = None,
    admission: Optional[str] = None,
    admission_floor: Optional[float] = None,
    session_demand: Optional[float] = None,
) -> list[BatchJob]:
    """The full cross product as a job list (seed-major, stable order).

    ``controller_kwargs`` is keyed by controller name; ``engine_kwargs``
    (e.g. ``{"min_epoch_slots": 10}``) applies to every job's engine.
    ``sim_backend`` / ``warm_epochs`` / ``planner`` /
    ``repair_tolerance`` are shorthands for the engine kwargs of the same
    name — the per-epoch transport implementation (see
    :mod:`repro.simulation.backends`), warm-state carry-over, and the
    plan-lifecycle seam (see :mod:`repro.planning`; ``planner=None``
    keeps the per-controller default: incremental for the
    ``incremental`` policy, full rebuild otherwise) — all of which
    travel inside the picklable job specs like any other engine knob.
    So are the measurement-loop knobs ``estimation`` /
    ``probes_per_node`` / ``estimator_decay`` / ``noise_sigma`` (see
    :mod:`repro.estimation.online`): probe values derive from per-pair
    counter-based streams, so estimated sweeps stay bit-identical across
    execution modes like everything else.

    ``sessions=K`` switches every job into multi-tenant mode: the worker
    builds a K-channel fleet over the scenario's shared swarm
    (:func:`~repro.sessions.make_fleet`) and sweeps it through a
    :class:`~repro.sessions.FleetEngine`; ``broker`` / ``overlap`` /
    ``admission`` / ``admission_floor`` / ``session_demand`` configure
    the fleet and error out when passed without ``sessions``.
    """
    controller_kwargs = controller_kwargs or {}
    engine_kwargs = dict(engine_kwargs or {})
    fleet_kwargs: Dict[str, object] = {}
    if sessions is not None:
        fleet_kwargs["sessions"] = sessions
        if broker is not None:
            fleet_kwargs["broker"] = broker
        if overlap is not None:
            fleet_kwargs["overlap"] = overlap
        if admission is not None:
            fleet_kwargs["admission"] = admission
        if admission_floor is not None:
            fleet_kwargs["admission_floor"] = admission_floor
        if session_demand is not None:
            fleet_kwargs["session_demand"] = session_demand
    elif any(
        v is not None
        for v in (broker, overlap, admission, admission_floor, session_demand)
    ):
        raise ValueError(
            "broker/overlap/admission/admission_floor/session_demand "
            "require sessions= (the multi-tenant switch)"
        )
    if sim_backend is not None:
        engine_kwargs["sim_backend"] = sim_backend
    if warm_epochs is not None:
        engine_kwargs["warm_epochs"] = warm_epochs
    if planner is not None:
        engine_kwargs["planner"] = planner
    if repair_tolerance is not None:
        engine_kwargs["repair_tolerance"] = repair_tolerance
    if estimation is not None:
        engine_kwargs["estimation"] = estimation
    if probes_per_node is not None:
        engine_kwargs["probes_per_node"] = probes_per_node
    if estimator_decay is not None:
        engine_kwargs["estimator_decay"] = estimator_decay
    if noise_sigma is not None:
        engine_kwargs["noise_sigma"] = noise_sigma
    return [
        BatchJob.make(
            scenario,
            controller,
            seed,
            engine_kwargs=engine_kwargs,
            fleet_kwargs=fleet_kwargs,
            **controller_kwargs.get(controller, {}),
        )
        for seed in seeds
        for scenario in scenarios
        for controller in controllers
    ]


def summarize_batch(results: Sequence[RunSummary]) -> str:
    """Render a sweep as the repo's standard fixed-width table.

    Multi-tenant sweeps grow four fleet columns (broker, admitted
    sessions, aggregate goodput, fairness); single-session sweeps keep
    the historical shape.
    """
    fleet = any(r.sessions for r in results)
    rows = [
        [
            r.scenario,
            r.controller,
            r.seed,
            r.rebuilds,
            r.repairs,
            f"{r.mean_delivered:.3f}",
            f"{r.worst_delivered:.3f}",
            f"{r.mean_optimality:.3f}",
            "-" if r.mean_repair_latency is None else f"{r.mean_repair_latency:.1f}",
            r.final_alive,
            r.estimation,
            r.probes,
            "-" if r.estimation_error is None else f"{r.estimation_error:.3f}",
            f"{r.cache_hits}/{r.cache_hits + r.cache_misses}",
        ]
        + (
            [
                r.broker or "-",
                f"{r.admitted}/{r.sessions}" if r.sessions else "-",
                "-" if r.fleet_goodput is None else f"{r.fleet_goodput:.1f}",
                "-" if r.fairness is None else f"{r.fairness:.3f}",
            ]
            if fleet
            else []
        )
        for r in results
    ]
    return format_table(
        [
            "scenario", "controller", "seed", "rebuilds", "repairs",
            "mean dlv", "worst dlv", "mean opt", "repair lat", "alive",
            "estim", "probes", "est err", "cache",
        ]
        + (["broker", "sessions", "fleet gp", "fairness"] if fleet else []),
        rows,
    )
