"""Platform events and the mutable node population they act on.

The static optimization problem of the paper freezes the platform: a
source, ``n`` open nodes, ``m`` guarded nodes, fixed bandwidths.  The
runtime subsystem lifts that restriction.  A :class:`DynamicPlatform`
holds the *live* population keyed by stable external node ids, and three
event types mutate it over (slotted) time:

* :class:`NodeJoin` — a peer arrives with a class and an upload bandwidth;
* :class:`NodeLeave` — a peer departs or crashes (the source never leaves);
* :class:`BandwidthDrift` — a peer's upload bandwidth changes in place.

Events are totally ordered by :class:`EventQueue` (a heapq keyed on
``(time, sequence)``, so simultaneous events preserve insertion order).
Scenario generators (:mod:`repro.runtime.scenarios`) emit event lists;
the engine (:mod:`repro.runtime.engine`) drains the queue and re-runs the
bounded multi-port optimizer on snapshots of the surviving swarm.

The bridge back to the static solvers is :meth:`DynamicPlatform.snapshot`:
it canonicalizes the alive population into an :class:`~repro.core.instance.
Instance` (class-wise sorted, as every algorithm requires) and returns the
id map from canonical node positions back to external ids.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..core.instance import Instance, NodeKind, canonicalize_population

__all__ = [
    "Event",
    "NodeJoin",
    "NodeLeave",
    "BandwidthDrift",
    "EventQueue",
    "NodeState",
    "DynamicPlatform",
]


@dataclass(frozen=True)
class Event:
    """Base class: something that happens to the platform at ``time``.

    ``time`` is measured in simulation slots (the unit of
    :func:`~repro.simulation.packet_sim.simulate_packet_broadcast`).
    """

    time: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class NodeJoin(Event):
    """A peer arrives.

    ``node_id`` may be pre-assigned by the scenario generator (so later
    events can target the same peer); when ``None`` the platform assigns
    the next fresh id on application.
    """

    kind: str = NodeKind.OPEN
    bandwidth: float = 1.0
    node_id: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind not in (NodeKind.OPEN, NodeKind.GUARDED):
            raise ValueError(f"unknown node kind {self.kind!r}")
        if not self.bandwidth >= 0:
            raise ValueError(f"join bandwidth must be >= 0, got {self.bandwidth}")


@dataclass(frozen=True)
class NodeLeave(Event):
    """A peer departs (gracefully or by crashing — the model is the same:
    all of its overlay edges go dark)."""

    node_id: int = -1


@dataclass(frozen=True)
class BandwidthDrift(Event):
    """A peer's upload bandwidth changes to ``bandwidth``."""

    node_id: int = -1
    bandwidth: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.bandwidth >= 0:
            raise ValueError(f"drift bandwidth must be >= 0, got {self.bandwidth}")


class EventQueue:
    """Min-heap of events keyed on ``(time, insertion order)``.

    Ties on ``time`` pop in insertion order, so scenario generators can
    rely on e.g. a leave scheduled before a join at the same slot being
    applied first.
    """

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._seq = itertools.count()
        self._heap: list[tuple[int, int, Event]] = []
        for ev in events:
            self.push(ev)

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, next(self._seq), event))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def pop_until(self, time: int) -> list[Event]:
        """Pop every event with ``event.time <= time``, in order."""
        fired = []
        while self._heap and self._heap[0][0] <= time:
            fired.append(heapq.heappop(self._heap)[2])
        return fired

    def drain(self) -> Iterator[Event]:
        """Pop everything in order (mainly for tests/inspection)."""
        while self._heap:
            yield heapq.heappop(self._heap)[2]


@dataclass
class NodeState:
    """Lifecycle record of one peer, kept even after departure."""

    node_id: int
    kind: str
    bandwidth: float
    alive: bool = True
    joined_at: int = 0
    left_at: Optional[int] = None


@dataclass
class DynamicPlatform:
    """The mutable population: a source plus an evolving receiver set.

    External node ids are stable for the whole run (the source is always
    id 0); canonical instance positions are *not* stable — they change
    with every join/leave/drift — which is exactly why :meth:`snapshot`
    returns the id map alongside the instance.
    """

    source_bw: float
    nodes: dict[int, NodeState] = field(default_factory=dict)
    _next_id: int = 1

    @classmethod
    def from_instance(cls, instance: Instance) -> "DynamicPlatform":
        """Seed the population from a static instance.

        External ids 1..n+m initially coincide with the canonical paper
        indexing of ``instance`` (they diverge as soon as churn starts).
        """
        platform = cls(source_bw=instance.source_bw)
        for i in instance.receivers():
            platform.nodes[i] = NodeState(
                node_id=i,
                kind=instance.kind(i),
                bandwidth=instance.bandwidth(i),
            )
        platform._next_id = instance.num_nodes
        return platform

    # ------------------------------------------------------------------
    # Population queries
    # ------------------------------------------------------------------
    def alive_ids(self) -> list[int]:
        """Ids of the currently-alive receivers (sorted, source excluded)."""
        return sorted(i for i, s in self.nodes.items() if s.alive)

    def is_alive(self, node_id: int) -> bool:
        if node_id == 0:
            return True  # the source never fails in the model
        state = self.nodes.get(node_id)
        return state is not None and state.alive

    @property
    def num_alive(self) -> int:
        return sum(1 for s in self.nodes.values() if s.alive)

    @property
    def next_id(self) -> int:
        """The id the next anonymous :class:`NodeJoin` would receive."""
        return self._next_id

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: Event) -> int:
        """Apply one event; returns the affected external node id."""
        if isinstance(event, NodeJoin):
            node_id = event.node_id
            if node_id is None:
                node_id = self._next_id
            if node_id in self.nodes and self.nodes[node_id].alive:
                raise ValueError(f"node {node_id} joined twice")
            self._next_id = max(self._next_id, node_id + 1)
            self.nodes[node_id] = NodeState(
                node_id=node_id,
                kind=event.kind,
                bandwidth=event.bandwidth,
                joined_at=event.time,
            )
            return node_id
        if isinstance(event, NodeLeave):
            state = self._live_state(event.node_id, "leave")
            state.alive = False
            state.left_at = event.time
            return event.node_id
        if isinstance(event, BandwidthDrift):
            state = self._live_state(event.node_id, "drift")
            state.bandwidth = event.bandwidth
            return event.node_id
        raise TypeError(f"unknown event type {type(event).__name__}")

    def _live_state(self, node_id: int, what: str) -> NodeState:
        if node_id == 0:
            raise ValueError(f"the source cannot {what}")
        state = self.nodes.get(node_id)
        if state is None or not state.alive:
            raise ValueError(f"{what} targets unknown/departed node {node_id}")
        return state

    def true_capacities(self, node_ids: Iterable[int]) -> list[float]:
        """Oracle upload capacity per external id, in ``node_ids`` order.

        Id 0 is the source; departed or unknown peers report 0.0 (their
        edges are dark).  This is *the* rule for clipping a plan's edge
        rates back to ground truth — shared by the engine's estimation
        transport and the flow-level estimation-gap analysis so the two
        paths cannot drift.
        """
        caps = []
        for node_id in node_ids:
            if node_id == 0:
                caps.append(self.source_bw)
            else:
                state = self.nodes.get(node_id)
                caps.append(0.0 if state is None else state.bandwidth)
        return caps

    # ------------------------------------------------------------------
    # Bridge to the static optimizer
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[Instance, list[int]]:
        """Canonical instance of the alive swarm plus the id map.

        Returns ``(instance, node_ids)`` where ``node_ids[k]`` is the
        external id of canonical node ``k`` (``node_ids[0] == 0``, the
        source).  Every solver output computed on ``instance`` can be
        mapped back to live peers through this list.
        """
        opens = [
            (i, s.bandwidth)
            for i, s in sorted(self.nodes.items())
            if s.alive and s.kind == NodeKind.OPEN
        ]
        guardeds = [
            (i, s.bandwidth)
            for i, s in sorted(self.nodes.items())
            if s.alive and s.kind == NodeKind.GUARDED
        ]
        return canonicalize_population(self.source_bw, opens, guardeds)
