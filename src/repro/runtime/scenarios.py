"""Scenario registry: named, declarative dynamic-platform workloads.

A scenario is a small frozen dataclass: the static base swarm (size /
open probability / bandwidth distribution, sampled exactly like the
Figure 19 study) plus a generator of timestamped events.  ``build(seed)``
materializes it into a :class:`ScenarioRun` — platform, event list,
horizon — that any controller can be run against, deterministically.

Five workloads ship by default, spanning the dynamics the related work
cares about:

* ``steady-churn`` — Poisson join/leave, the classic P2P regime;
* ``flash-crowd`` — a burst of arrivals mid-stream;
* ``diurnal`` — per-peer bandwidth following a day/night sine;
* ``rack-failure`` — a correlated block of peers crashing at once;
* ``live-stream`` — a Mathieu-style live-streaming trace: Poisson
  arrivals, exponential session lifetimes, a free-rider class with
  near-zero upload next to well-provisioned contributors.

Users declare their own by subclassing :class:`Scenario` (one method)
and calling :func:`register_scenario`; specs round-trip through
:func:`spec_to_dict` / :func:`spec_from_dict` so sweeps can be persisted
and replayed.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Type

import numpy as np

from ..core.instance import NodeKind
from ..instances.generators import DISTRIBUTIONS, random_instance
from .events import BandwidthDrift, DynamicPlatform, Event, NodeJoin, NodeLeave

__all__ = [
    "Scenario",
    "ScenarioRun",
    "SteadyChurn",
    "FlashCrowd",
    "DiurnalDrift",
    "RackFailure",
    "LiveStreamTrace",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "spec_to_dict",
    "spec_from_dict",
]

#: Scenario generators never drain the swarm below this many receivers.
MIN_ALIVE = 2


@dataclass(frozen=True)
class ScenarioRun:
    """A materialized scenario: everything an engine run needs."""

    name: str
    platform: DynamicPlatform
    events: tuple[Event, ...]
    horizon: int
    seed: int


@dataclass(frozen=True)
class Scenario:
    """Base spec: a static base swarm and (by default) no events.

    Subclasses override :meth:`events`; the two RNG streams (numpy for
    bandwidth sampling, stdlib for event timing) are both derived from
    the single ``build`` seed, so a run is one integer away from exact
    replay.
    """

    size: int = 30
    open_prob: float = 0.5
    distribution: str = "Unif100"
    horizon: int = 480

    def events(
        self,
        rng: random.Random,
        np_rng: np.random.Generator,
        platform: DynamicPlatform,
    ) -> Iterable[Event]:
        return ()

    # ------------------------------------------------------------------
    def build(self, seed: int = 0, *, name: str = "") -> ScenarioRun:
        """Sample the base swarm and generate the full event list."""
        np_rng = np.random.default_rng(seed)
        instance = random_instance(
            np_rng, self.size, self.open_prob, self.distribution
        )
        platform = DynamicPlatform.from_instance(instance)
        ev_rng = random.Random(f"{seed}:{type(self).__name__}")
        events = tuple(self.events(ev_rng, np_rng, platform))
        return ScenarioRun(
            name=name or type(self).__name__,
            platform=platform,
            events=events,
            horizon=self.horizon,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Shared generator helpers
    # ------------------------------------------------------------------
    def _sample_bw(self, np_rng: np.random.Generator) -> float:
        return float(DISTRIBUTIONS[self.distribution](np_rng, 1)[0])

    def _sample_kind(self, rng: random.Random) -> str:
        return (
            NodeKind.OPEN if rng.random() < self.open_prob else NodeKind.GUARDED
        )


@dataclass(frozen=True)
class SteadyChurn(Scenario):
    """Independent Poisson arrival/departure streams (rates per slot)."""

    join_rate: float = 0.02
    leave_rate: float = 0.02

    def events(self, rng, np_rng, platform):
        alive = list(platform.alive_ids())
        next_id = platform.next_id
        events: list[Event] = []
        t_join = 1 + rng.expovariate(self.join_rate) if self.join_rate > 0 else math.inf
        t_leave = 1 + rng.expovariate(self.leave_rate) if self.leave_rate > 0 else math.inf
        while min(t_join, t_leave) < self.horizon:
            if t_join <= t_leave:
                events.append(
                    NodeJoin(
                        time=int(t_join),
                        kind=self._sample_kind(rng),
                        bandwidth=self._sample_bw(np_rng),
                        node_id=next_id,
                    )
                )
                alive.append(next_id)
                next_id += 1
                t_join += rng.expovariate(self.join_rate)
            else:
                if len(alive) > MIN_ALIVE:
                    victim = alive.pop(rng.randrange(len(alive)))
                    events.append(NodeLeave(time=int(t_leave), node_id=victim))
                t_leave += rng.expovariate(self.leave_rate)
        return events


@dataclass(frozen=True)
class FlashCrowd(Scenario):
    """``arrivals`` peers pile in around slot ``at`` (uniform in a window)."""

    arrivals: int = 20
    at: int = 160
    spread: int = 40

    def events(self, rng, np_rng, platform):
        next_id = platform.next_id
        events: list[Event] = []
        for _ in range(self.arrivals):
            t = self.at + rng.randrange(max(self.spread, 1))
            events.append(
                NodeJoin(
                    time=min(t, self.horizon - 1),
                    kind=self._sample_kind(rng),
                    bandwidth=self._sample_bw(np_rng),
                    node_id=next_id,
                )
            )
            next_id += 1
        events.sort(key=lambda e: e.time)
        return events


@dataclass(frozen=True)
class DiurnalDrift(Scenario):
    """Every peer's upload follows a sine with a random phase.

    Sampled every ``sample_every`` slots into discrete
    :class:`BandwidthDrift` events (the bounded multi-port model has no
    continuous time), floored at 5% of the base bandwidth.
    """

    amplitude: float = 0.5
    period: int = 240
    sample_every: int = 40

    def events(self, rng, np_rng, platform):
        bases = {
            i: platform.nodes[i].bandwidth for i in platform.alive_ids()
        }
        phases = {i: rng.uniform(0, 2 * math.pi) for i in bases}
        events: list[Event] = []
        for t in range(self.sample_every, self.horizon, self.sample_every):
            for i, base in bases.items():
                wave = 1.0 + self.amplitude * math.sin(
                    2 * math.pi * t / self.period + phases[i]
                )
                events.append(
                    BandwidthDrift(
                        time=t, node_id=i, bandwidth=max(wave, 0.05) * base
                    )
                )
        return events


@dataclass(frozen=True)
class RackFailure(Scenario):
    """A correlated failure: a contiguous id block departs at slot ``at``.

    Models a rack/AS-level outage — the worst case for a static overlay,
    since the block takes all of its forwarding capacity down at once.
    """

    fraction: float = 0.3
    at: int = 200

    def events(self, rng, np_rng, platform):
        ids = platform.alive_ids()
        block = max(1, min(int(len(ids) * self.fraction), len(ids) - MIN_ALIVE))
        start = rng.randrange(max(len(ids) - block, 1))
        return [
            NodeLeave(time=self.at, node_id=i)
            for i in ids[start:start + block]
        ]


@dataclass(frozen=True)
class LiveStreamTrace(Scenario):
    """Mathieu-style live-streaming swarm trace.

    Viewers arrive in a Poisson stream and stay for exponentially
    distributed sessions; a ``freerider_prob`` fraction are near-zero
    uploaders (NATed/free-riding viewers, modelled guarded), the rest
    are contributors whose upload is drawn from ``distribution``.
    """

    arrival_rate: float = 0.05
    mean_lifetime: float = 150.0
    freerider_prob: float = 0.4
    freerider_bw: float = 0.5

    def events(self, rng, np_rng, platform):
        next_id = platform.next_id
        events: list[Event] = []
        t = 1 + rng.expovariate(self.arrival_rate)
        while t < self.horizon:
            if rng.random() < self.freerider_prob:
                kind, bw = NodeKind.GUARDED, self.freerider_bw
            else:
                kind, bw = self._sample_kind(rng), self._sample_bw(np_rng)
            events.append(
                NodeJoin(time=int(t), kind=kind, bandwidth=bw, node_id=next_id)
            )
            depart = int(t + rng.expovariate(1.0 / self.mean_lifetime)) + 1
            if depart < self.horizon:
                events.append(NodeLeave(time=depart, node_id=next_id))
            next_id += 1
            t += rng.expovariate(self.arrival_rate)
        events.sort(key=lambda e: e.time)
        return events


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
SCENARIOS: Dict[str, Scenario] = {}

#: Spec classes known to the (de)serializer, keyed by class name.
SPEC_TYPES: Dict[str, Type[Scenario]] = {}


def register_scenario(
    name: str, spec: Scenario, *, overwrite: bool = False
) -> Scenario:
    """Publish ``spec`` under ``name`` (CLI / batch lookup key)."""
    if not overwrite and name in SCENARIOS:
        raise KeyError(f"scenario {name!r} already registered")
    if not isinstance(spec, Scenario):
        raise TypeError(f"spec must be a Scenario, got {type(spec).__name__}")
    SCENARIOS[name] = spec
    SPEC_TYPES.setdefault(type(spec).__name__, type(spec))
    return spec


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def spec_to_dict(spec: Scenario) -> dict:
    """JSON-friendly form: spec class name plus its field values."""
    return {
        "type": type(spec).__name__,
        "params": dataclasses.asdict(spec),
    }


def spec_from_dict(data: dict) -> Scenario:
    """Inverse of :func:`spec_to_dict` (for registered spec types)."""
    try:
        cls = SPEC_TYPES[data["type"]]
    except KeyError:
        known = ", ".join(sorted(SPEC_TYPES))
        raise KeyError(
            f"unknown scenario type {data['type']!r} (known: {known})"
        ) from None
    return cls(**data["params"])


for _name, _spec in [
    ("steady-churn", SteadyChurn()),
    ("flash-crowd", FlashCrowd()),
    ("diurnal", DiurnalDrift()),
    ("rack-failure", RackFailure()),
    ("live-stream", LiveStreamTrace()),
]:
    register_scenario(_name, _spec)
del _name, _spec
