"""Event-driven runtime: advance a platform through events, re-optimize.

The engine turns the paper's one-shot pipeline (instance -> Theorem 4.1
overlay -> packet simulation) into a *control loop* over a
:class:`~repro.runtime.events.DynamicPlatform`:

1. drain all events up to the current slot and apply them;
2. let the controller policy react (keep the current overlay, or rebuild
   it on a snapshot of the surviving swarm via the memoized
   :class:`OverlayCache`);
3. simulate the epoch — the interval until the next event or controller
   wake-up — through the :mod:`repro.simulation` facade (backend
   selectable per engine via ``sim_backend``), marking departed overlay
   members as failed so stale plans starve exactly the peers they would
   starve in the field;
4. record an :class:`EpochReport` (goodput, delivered-vs-planned rate,
   distance to the *recomputed* optimum ``T*_ac``, repair bookkeeping).

Epoch transport state comes in two flavors.  Cold (default,
``warm_epochs=False``): every epoch restarts
:func:`~repro.simulation.packet_sim.simulate_packet_broadcast` from
empty buffers with departed members failed from slot 0 — reproducible,
but short epochs then measure ramp-up artifacts.  Warm
(``warm_epochs=True``): one resumable
:class:`~repro.simulation.core.PacketSimEngine` per plan carries
buffers/credits/RNG across epochs, departures are injected mid-stream at
the slot they happen, and only rebuilds restart the transport.

Everything is reproducible end to end: one ``seed`` drives the engine's
per-epoch simulation seeds, and scenario generators receive their own
seeded RNGs (see :mod:`repro.runtime.scenarios`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..algorithms.acyclic_guarded import AcyclicSolution, acyclic_guarded_scheme
from ..core.instance import Instance
from ..core.scheme import BroadcastScheme
from ..simulation.backends import BACKENDS
from ..simulation.core import PacketSimEngine, available_backends
from ..simulation.packet_sim import simulate_packet_broadcast
from .events import DynamicPlatform, Event, EventQueue, NodeLeave

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .controller import Controller

__all__ = [
    "OverlayCache",
    "Plan",
    "EpochReport",
    "RunResult",
    "RuntimeEngine",
]

#: Simulated at slightly below the planned rate so credit quantization
#: never asks the overlay for more than it provisions (same back-off the
#: churn experiment has always used).
RATE_BACKOFF = 1.0 - 1e-9


class OverlayCache:
    """Memoized Theorem 4.1 solver keyed on the canonical instance.

    Churn revisits populations (a peer leaves and an identical one joins;
    a batch sweep re-runs the same scenario under every controller), and
    :class:`~repro.core.instance.Instance` is frozen/hashable, so a plain
    dict turns repeated dichotomic searches into lookups.  Hit/miss
    counters are surfaced in run results so sweeps can report how much
    recomputation the cache absorbed.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self._store: dict[Instance, AcyclicSolution] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def solve(self, instance: Instance) -> AcyclicSolution:
        sol = self._store.get(instance)
        if sol is not None:
            self.hits += 1
            return sol
        self.misses += 1
        sol = acyclic_guarded_scheme(instance)
        if len(self._store) >= self.max_entries:  # unbounded growth guard
            self._store.clear()
        self._store[instance] = sol
        return sol

    def optimal_rate(self, instance: Instance) -> float:
        """``T*_ac`` of ``instance`` (through the same memo)."""
        return self.solve(instance).throughput

    def stats(self) -> tuple[int, int]:
        return self.hits, self.misses


@dataclass
class Plan:
    """An overlay the controller committed to, frozen at build time.

    The scheme lives in the *canonical space* of ``instance``;
    ``node_ids[k]`` maps canonical position ``k`` back to the external id
    it was built for.  Peers that join later are simply absent — the
    whole point of the runtime is measuring what that costs.
    """

    instance: Instance
    scheme: BroadcastScheme
    rate: float
    word: str
    node_ids: list[int]
    built_at: int

    @property
    def size(self) -> int:
        return len(self.node_ids)


@dataclass
class EpochReport:
    """Measurements for one epoch ``[start, end)`` of the run."""

    start: int
    end: int
    num_alive: int  #: alive receivers on the platform during the epoch
    planned_rate: float  #: rate the active plan provisions
    optimal_rate: float  #: recomputed ``T*_ac`` of the alive swarm
    min_goodput: float  #: worst alive receiver (0.0 for unplanned peers)
    mean_goodput: float
    starved: int  #: alive receivers below 50% of the planned rate
    unserved: int  #: alive receivers absent from the active plan
    rebuilt: bool  #: controller installed a new plan at ``start``
    events: tuple[Event, ...] = ()  #: events applied at ``start``

    @property
    def slots(self) -> int:
        return self.end - self.start

    @property
    def delivered_fraction(self) -> float:
        """Worst delivered rate relative to the *planned* rate."""
        if self.planned_rate <= 0:
            return 1.0
        return self.min_goodput / self.planned_rate

    @property
    def optimality_fraction(self) -> float:
        """Worst delivered rate relative to the recomputed optimum."""
        if self.optimal_rate <= 0:
            return 1.0
        return self.min_goodput / self.optimal_rate


@dataclass
class RunResult:
    """Everything one engine run produced."""

    controller: str
    horizon: int
    epochs: list[EpochReport]
    rebuilds: int
    repair_latencies: list[int]  #: slots from each departure to the next rebuild
    cache_hits: int
    cache_misses: int
    seed: Optional[int] = None
    scenario: Optional[str] = None

    def _weighted(self, attr: str) -> float:
        total = sum(e.slots for e in self.epochs)
        if total == 0:
            return 1.0
        return (
            sum(getattr(e, attr) * e.slots for e in self.epochs) / total
        )

    @property
    def mean_delivered_fraction(self) -> float:
        """Slot-weighted mean of per-epoch delivered-vs-planned rate."""
        return self._weighted("delivered_fraction")

    @property
    def mean_optimality_fraction(self) -> float:
        """Slot-weighted mean of per-epoch delivered-vs-``T*_ac`` rate."""
        return self._weighted("optimality_fraction")

    @property
    def worst_delivered_fraction(self) -> float:
        if not self.epochs:
            return 1.0
        return min(e.delivered_fraction for e in self.epochs)

    @property
    def mean_repair_latency(self) -> Optional[float]:
        if not self.repair_latencies:
            return None
        return sum(self.repair_latencies) / len(self.repair_latencies)


@dataclass
class _EpochSimParams:
    """Knobs of the per-epoch packet simulation."""

    packets_per_slot: float = 2.0  #: target injection granularity
    warmup_fraction: float = 0.3
    burst_cap: float = 4.0


class RuntimeEngine:
    """Drives one platform through one event list under one controller."""

    def __init__(
        self,
        platform: DynamicPlatform,
        events: Iterable[Event],
        horizon: int,
        *,
        seed: Optional[int] = 0,
        cache: Optional[OverlayCache] = None,
        packets_per_slot: float = 2.0,
        warmup_fraction: float = 0.3,
        min_epoch_slots: int = 1,
        sim_backend: str = "reference",
        warm_epochs: bool = False,
        sim_workers: Optional[int] = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if min_epoch_slots < 1:
            raise ValueError(
                f"min_epoch_slots must be >= 1, got {min_epoch_slots}"
            )
        # Fail fast: a bad backend/workers combination would otherwise
        # only surface mid-run, at the first simulated epoch (or, via
        # the batch runner, after a whole sweep has been dispatched).
        if sim_backend not in available_backends():
            raise ValueError(
                f"unknown simulation backend {sim_backend!r} "
                f"(known: {', '.join(available_backends())})"
            )
        if sim_workers is not None and sim_workers < 1:
            raise ValueError(
                f"sim_workers must be >= 1, got {sim_workers}"
            )
        backend_cls = BACKENDS.get(sim_backend)  # None for "auto"
        if (
            sim_workers is not None
            and sim_workers > 1
            and backend_cls is not None
            and not backend_cls.supports_workers
        ):
            raise ValueError(
                f"sim_workers={sim_workers} requires a backend with "
                f"worker support ('sharded', or 'auto' on decomposable "
                f"schemes); {sim_backend!r} is single-threaded"
            )
        self.platform = platform
        self.queue = EventQueue(events)
        self.horizon = int(horizon)
        self.seed = seed
        self.cache = cache if cache is not None else OverlayCache()
        self._sim = _EpochSimParams(
            packets_per_slot=packets_per_slot,
            warmup_fraction=warmup_fraction,
        )
        self.min_epoch_slots = int(min_epoch_slots)
        self.sim_backend = sim_backend
        self.warm_epochs = bool(warm_epochs)
        self.sim_workers = sim_workers
        self._rng = random.Random(seed)
        self.now = 0
        #: Warm-state carry-over: one live transport run per active plan.
        self._warm_sim: Optional[PacketSimEngine] = None
        self._warm_plan: Optional[Plan] = None
        self._warm_failed: set[int] = set()

    # ------------------------------------------------------------------
    # Controller-facing API
    # ------------------------------------------------------------------
    def build_plan(self) -> Plan:
        """Optimize the current alive swarm into a fresh :class:`Plan`."""
        instance, node_ids = self.platform.snapshot()
        sol = self.cache.solve(instance)
        return Plan(
            instance=instance,
            scheme=sol.scheme,
            rate=sol.throughput,
            word=sol.word,
            node_ids=node_ids,
            built_at=self.now,
        )

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, controller: "Controller") -> RunResult:
        epochs: list[EpochReport] = []
        rebuilds = 0
        repair_latencies: list[int] = []
        pending_departures: list[int] = []  # departure times awaiting a rebuild

        initial = self.queue.pop_until(0)
        for ev in initial:
            self.platform.apply(ev)
        plan = controller.start(self)
        rebuilds += 1  # the initial build counts as one optimization

        fired: tuple[Event, ...] = tuple(initial)
        while self.now < self.horizon:
            end = self._epoch_end(controller)
            report = self._simulate_epoch(
                plan, self.now, end, fired, rebuilt=(self.now == plan.built_at)
            )
            epochs.append(report)
            self.now = end
            if self.now >= self.horizon:
                break
            popped = self.queue.pop_until(self.now)
            for ev in popped:
                self.platform.apply(ev)
                if isinstance(ev, NodeLeave):
                    pending_departures.append(ev.time)
            fired = tuple(popped)
            new_plan = controller.on_change(self, fired)
            if new_plan is not None:
                plan = new_plan
                rebuilds += 1
                repair_latencies.extend(
                    self.now - t for t in pending_departures
                )
                pending_departures.clear()

        hits, misses = self.cache.stats()
        return RunResult(
            controller=controller.name,
            horizon=self.horizon,
            epochs=epochs,
            rebuilds=rebuilds,
            repair_latencies=repair_latencies,
            cache_hits=hits,
            cache_misses=misses,
            seed=self.seed,
        )

    def _epoch_end(self, controller: "Controller") -> int:
        """Next decision point: event, controller wake-up, or horizon.

        ``min_epoch_slots`` is the control-loop tick: with a tick above 1
        the engine refuses to cut epochs shorter than the tick, batching
        event storms (e.g. a flash crowd arriving one peer per slot) into
        one decision instead of simulating unmeasurable 1-slot epochs.
        Events still *take effect* at the boundary where they are popped,
        never before their timestamp.
        """
        end = self.horizon
        pending = self.queue.peek_time()
        if pending is not None:
            end = min(end, max(pending, self.now + 1))
        wake = controller.wake_after(self.now)
        if wake is not None:
            end = min(end, max(int(wake), self.now + 1))
        end = max(end, self.now + self.min_epoch_slots)
        return min(max(end, self.now + 1), max(self.horizon, self.now + 1))

    # ------------------------------------------------------------------
    # Epoch measurement
    # ------------------------------------------------------------------
    def _simulate_epoch(
        self,
        plan: Plan,
        start: int,
        end: int,
        events: tuple[Event, ...],
        *,
        rebuilt: bool,
    ) -> EpochReport:
        alive = self.platform.alive_ids()
        optimal_rate = self.cache.optimal_rate(self.platform.snapshot()[0])
        if not alive:
            return EpochReport(
                start=start, end=end, num_alive=0,
                planned_rate=plan.rate, optimal_rate=optimal_rate,
                min_goodput=plan.rate, mean_goodput=plan.rate,
                starved=0, unserved=0, rebuilt=rebuilt, events=events,
            )

        goodput_by_id = dict.fromkeys(alive, 0.0)
        if plan.rate > 0 and plan.size > 1:
            rate = plan.rate * RATE_BACKOFF
            ppu = self._sim.packets_per_slot / max(rate, 1e-12)
            failed = {
                k
                for k, node_id in enumerate(plan.node_ids)
                if k > 0 and not self.platform.is_alive(node_id)
            }
            if self.warm_epochs:
                goodput = self._warm_epoch_goodput(
                    plan, rate, ppu, failed, end - start
                )
            else:
                sim_seed = (
                    self._rng.randrange(2**32)
                    if self.seed is not None
                    else None
                )
                goodput = simulate_packet_broadcast(
                    plan.instance,
                    plan.scheme,
                    rate,
                    slots=end - start,
                    packets_per_unit=ppu,
                    burst_cap=self._sim.burst_cap,
                    warmup_fraction=self._sim.warmup_fraction,
                    seed=sim_seed,
                    failures={k: 0 for k in failed},
                    backend=self.sim_backend,
                    workers=self.sim_workers,
                ).goodput
            for k, node_id in enumerate(plan.node_ids):
                if k > 0 and node_id in goodput_by_id:
                    goodput_by_id[node_id] = goodput[k]

        values = list(goodput_by_id.values())
        planned_members = set(plan.node_ids)
        return EpochReport(
            start=start,
            end=end,
            num_alive=len(alive),
            planned_rate=plan.rate,
            optimal_rate=optimal_rate,
            min_goodput=min(values),
            mean_goodput=sum(values) / len(values),
            starved=sum(1 for v in values if v < 0.5 * plan.rate),
            unserved=sum(1 for i in alive if i not in planned_members),
            rebuilt=rebuilt,
            events=events,
        )

    def _warm_epoch_goodput(
        self,
        plan: Plan,
        rate: float,
        ppu: float,
        failed: set[int],
        slots: int,
    ) -> list[float]:
        """Advance the plan's *persistent* transport run by one epoch.

        The packet buffers/credits/RNG carry over between epochs of the
        same plan, so short epochs measure real transients instead of
        fresh ramp-ups.  A rebuild necessarily starts a new run (new
        overlay, empty buffers), whose first epoch honors
        ``warmup_fraction`` exactly like cold mode; every later epoch of
        the plan is warm and measured over its full span.  Members that
        departed since the last epoch are failed at the run's *current*
        slot, mid-stream, which is when the field would see their edges
        go dark.
        """
        sim = self._warm_sim
        warmup = 0
        if sim is None or self._warm_plan is not plan:
            sim_seed = (
                self._rng.randrange(2**32) if self.seed is not None else None
            )
            sim = PacketSimEngine(
                plan.instance,
                plan.scheme,
                rate,
                packets_per_unit=ppu,
                burst_cap=self._sim.burst_cap,
                seed=sim_seed,
                failures={k: 0 for k in failed},
                backend=self.sim_backend,
                workers=self.sim_workers,
            )
            self._warm_sim = sim
            self._warm_plan = plan
            self._warm_failed = set(failed)
            warmup = int(slots * self._sim.warmup_fraction)
        else:
            for k in failed - self._warm_failed:
                sim.fail_node(k)
            self._warm_failed |= failed
        sim.step(warmup)
        sim.begin_window()
        sim.step(slots - warmup)
        return sim.window_goodput()
