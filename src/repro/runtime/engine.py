"""Event-driven runtime: advance a platform through events, re-optimize.

The engine turns the paper's one-shot pipeline (instance -> Theorem 4.1
overlay -> packet simulation) into a *control loop* over a
:class:`~repro.runtime.events.DynamicPlatform`:

1. drain all events up to the current slot and apply them;
2. let the controller policy react: keep the current overlay, or ask the
   injected :class:`~repro.planning.Planner` for a new plan — a full
   rebuild (:meth:`RuntimeEngine.build_plan`) or an incremental repair
   of the live overlay (:meth:`RuntimeEngine.replan`), both memoized
   through the planning-owned :class:`~repro.planning.PlanCache`;
3. simulate the epoch — the interval until the next event or controller
   wake-up — through the :mod:`repro.simulation` facade (backend
   selectable per engine via ``sim_backend``), marking departed overlay
   members as failed so stale plans starve exactly the peers they would
   starve in the field;
4. record an :class:`EpochReport` (goodput, delivered-vs-planned rate,
   distance to the *recomputed* optimum ``T*_ac``, plan-op and
   planner-cost bookkeeping).

Plan *construction* lives entirely in :mod:`repro.planning`; the engine
only decides epoch boundaries, keeps the measurement loop honest, and
accounts for what each planning decision cost (``plan_op`` /
``plan_seconds`` per epoch, ``repairs`` / ``repair_fallbacks`` /
``plan_seconds`` per run).  ``planner=None`` resolves per controller at
:meth:`RuntimeEngine.run`: the ``incremental`` controller gets an
:class:`~repro.planning.IncrementalRepairPlanner`, everything else the
historical :class:`~repro.planning.FullRebuildPlanner`.

Epoch transport state comes in two flavors.  Cold (default,
``warm_epochs=False``): every epoch restarts
:func:`~repro.simulation.packet_sim.simulate_packet_broadcast` from
empty buffers with departed members failed from slot 0 — reproducible,
but short epochs then measure ramp-up artifacts.  Warm
(``warm_epochs=True``): one resumable
:class:`~repro.simulation.core.PacketSimEngine` per plan carries
buffers/credits/RNG across epochs, departures are injected mid-stream at
the slot they happen, and only rebuilds restart the transport.

With ``estimation="online"`` the engine closes the paper's Section II-C
measurement loop: at every epoch boundary a
:class:`~repro.estimation.online.ProbeScheduler` issues seeded sparse
pairwise probes against the live platform, an
:class:`~repro.estimation.online.OnlineEstimator` folds them (with
exponential decay and churn-delta purges) into LastMile estimates, and
the resulting :class:`~repro.estimation.online.EstimatedPlatformView`
is what planners consult through :attr:`RuntimeEngine.view` — the
controller re-optimizes on *measured*, not oracle, bandwidths.  The
epoch transport stays honest: planned edge rates are clipped to the
*true* capacities of the plan's members (the QoS-limiter model of
:func:`~repro.analysis.robustness.clip_to_capacities`), so
overestimated uplinks under-deliver exactly as they would in the field,
while ``optimal_rate`` keeps scoring epochs against the oracle optimum.
Per-epoch probe counts and estimation errors land in
:class:`EpochReport`; probes never touch the engine's simulation RNG,
so oracle and estimated runs of the same seed share transport noise.

Everything is reproducible end to end: one ``seed`` drives the engine's
per-epoch simulation seeds, scenario generators receive their own
seeded RNGs (see :mod:`repro.runtime.scenarios`), and probe values
derive from per-pair counter-based streams.
"""

from __future__ import annotations

import dataclasses
import math
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Union

from ..estimation.online import (
    EstimatedPlatformView,
    OnlineEstimator,
    ProbeScheduler,
)
from ..planning import (
    Plan,
    PlanCache,
    PlanOutcome,
    Planner,
    make_planner,
    planner_names,
)
from ..simulation.backends import BACKENDS
from ..simulation.core import PacketSimEngine, available_backends
from ..simulation.packet_sim import simulate_packet_broadcast
from .events import DynamicPlatform, Event, EventQueue, NodeJoin, NodeLeave

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .controller import Controller

__all__ = [
    "OverlayCache",
    "Plan",
    "EpochReport",
    "RunResult",
    "RuntimeEngine",
]

#: Simulated at slightly below the planned rate so credit quantization
#: never asks the overlay for more than it provisions (same back-off the
#: churn experiment has always used).
RATE_BACKOFF = 1.0 - 1e-9

#: Back-compat name: the engine's memo moved to ``repro.planning`` (and
#: gained real LRU eviction on the way — see :class:`PlanCache`).
OverlayCache = PlanCache


@dataclass
class EpochReport:
    """Measurements for one epoch ``[start, end)`` of the run."""

    start: int
    end: int
    num_alive: int  #: alive receivers on the platform during the epoch
    planned_rate: float  #: rate the active plan provisions
    optimal_rate: float  #: recomputed ``T*_ac`` of the alive swarm
    min_goodput: float  #: worst alive receiver (0.0 for unplanned peers)
    mean_goodput: float
    starved: int  #: alive receivers below 50% of the planned rate
    unserved: int  #: alive receivers absent from the active plan
    rebuilt: bool  #: a new plan (build *or* repair) was installed at ``start``
    events: tuple[Event, ...] = ()  #: events applied at ``start``
    plan_op: str = "keep"  #: ``"build"`` / ``"repair"`` / ``"keep"``
    #: Planner wall time spent at this epoch's boundary (measurement
    #: noise: excluded from equality, like ``RunSummary.wall_time``).
    plan_seconds: float = field(default=0.0, compare=False)
    probes: int = 0  #: pairwise probes issued at this epoch's boundary
    #: Median relative error of the estimated view vs the oracle at the
    #: boundary (None when estimation is off or no receiver is alive).
    estimation_error: Optional[float] = None

    @property
    def slots(self) -> int:
        return self.end - self.start

    @property
    def delivered_fraction(self) -> float:
        """Worst delivered rate relative to the *planned* rate."""
        if self.planned_rate <= 0:
            return 1.0
        return self.min_goodput / self.planned_rate

    @property
    def optimality_fraction(self) -> float:
        """Worst delivered rate relative to the recomputed optimum."""
        if self.optimal_rate <= 0:
            return 1.0
        return self.min_goodput / self.optimal_rate


@dataclass
class RunResult:
    """Everything one engine run produced."""

    controller: str
    horizon: int
    epochs: list[EpochReport]
    rebuilds: int  #: full optimizations (initial build + rebuilds/fallbacks)
    repair_latencies: list[int]  #: slots from each departure to the next plan
    cache_hits: int
    cache_misses: int
    seed: Optional[int] = None
    scenario: Optional[str] = None
    planner: str = "full"  #: registry name of the planner that ran
    repairs: int = 0  #: incremental deltas applied instead of rebuilds
    repair_fallbacks: int = 0  #: repair attempts that fell back to a build
    plan_seconds: float = 0.0  #: total wall time spent inside the planner
    estimation: str = "oracle"  #: bandwidth feed: ``"oracle"`` / ``"online"``
    probes: int = 0  #: total pairwise probes the run paid for
    #: Wall-time breakdown of the run loop (``plan`` / ``arbitrate`` /
    #: ``simulate`` / ``epoch_boundary``), surfaced by ``--profile``.
    #: Measurement noise: excluded from equality like ``plan_seconds``.
    phase_seconds: dict = field(default_factory=dict, compare=False)

    def _weighted(self, attr: str) -> float:
        total = sum(e.slots for e in self.epochs)
        if total == 0:
            return 1.0
        return (
            sum(getattr(e, attr) * e.slots for e in self.epochs) / total
        )

    @property
    def mean_delivered_fraction(self) -> float:
        """Slot-weighted mean of per-epoch delivered-vs-planned rate."""
        return self._weighted("delivered_fraction")

    @property
    def mean_optimality_fraction(self) -> float:
        """Slot-weighted mean of per-epoch delivered-vs-``T*_ac`` rate."""
        return self._weighted("optimality_fraction")

    @property
    def worst_delivered_fraction(self) -> float:
        if not self.epochs:
            return 1.0
        return min(e.delivered_fraction for e in self.epochs)

    @property
    def mean_repair_latency(self) -> Optional[float]:
        if not self.repair_latencies:
            return None
        return sum(self.repair_latencies) / len(self.repair_latencies)

    @property
    def mean_estimation_error(self) -> Optional[float]:
        """Slot-weighted mean of per-epoch median estimation errors."""
        scored = [
            e for e in self.epochs if e.estimation_error is not None
        ]
        total = sum(e.slots for e in scored)
        if total == 0:
            return None
        return (
            sum(e.estimation_error * e.slots for e in scored) / total
        )


@dataclass
class _EpochSimParams:
    """Knobs of the per-epoch packet simulation."""

    packets_per_slot: float = 2.0  #: target injection granularity
    warmup_fraction: float = 0.3
    burst_cap: float = 4.0


class RuntimeEngine:
    """Drives one platform through one event list under one controller."""

    def __init__(
        self,
        platform: DynamicPlatform,
        events: Iterable[Event],
        horizon: int,
        *,
        seed: Optional[int] = 0,
        cache: Optional[PlanCache] = None,
        packets_per_slot: float = 2.0,
        warmup_fraction: float = 0.3,
        min_epoch_slots: int = 1,
        sim_backend: str = "reference",
        warm_epochs: bool = False,
        sim_workers: Optional[int] = None,
        sim_worker_mode: Optional[str] = None,
        planner: Union[str, Planner, None] = None,
        repair_tolerance: Optional[float] = None,
        plan_slack: float = 0.0,
        estimation: Optional[str] = None,
        probes_per_node: float = 4.0,
        estimator_decay: float = 0.8,
        noise_sigma: float = 0.1,
        estimator_warmstart: bool = False,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if min_epoch_slots < 1:
            raise ValueError(
                f"min_epoch_slots must be >= 1, got {min_epoch_slots}"
            )
        # Fail fast: a bad backend/workers combination would otherwise
        # only surface mid-run, at the first simulated epoch (or, via
        # the batch runner, after a whole sweep has been dispatched).
        if sim_backend not in available_backends():
            raise ValueError(
                f"unknown simulation backend {sim_backend!r} "
                f"(known: {', '.join(available_backends())})"
            )
        if sim_workers is not None and sim_workers < 1:
            raise ValueError(
                f"sim_workers must be >= 1, got {sim_workers}"
            )
        backend_cls = BACKENDS.get(sim_backend)  # None for "auto"
        if (
            sim_workers is not None
            and sim_workers > 1
            and backend_cls is not None
            and not backend_cls.supports_workers
        ):
            raise ValueError(
                f"sim_workers={sim_workers} requires a backend with "
                f"worker support ('sharded', or 'auto' on decomposable "
                f"schemes); {sim_backend!r} is single-threaded"
            )
        if sim_worker_mode not in (None, "thread", "process"):
            raise ValueError(
                f"sim_worker_mode must be None, 'thread' or 'process', "
                f"got {sim_worker_mode!r}"
            )
        if isinstance(planner, str) and planner not in planner_names():
            raise ValueError(
                f"unknown planner {planner!r} "
                f"(known: {', '.join(planner_names())})"
            )
        if not 0.0 <= plan_slack < 1.0:
            raise ValueError(
                f"plan_slack must be in [0, 1), got {plan_slack}"
            )
        if plan_slack > 0.0 and isinstance(planner, Planner):
            raise ValueError(
                "plan_slack applies to planners built by name; configure "
                "an explicit planner instance with slack=... directly"
            )
        if repair_tolerance is not None:
            if not 0.0 <= repair_tolerance < 1.0:
                raise ValueError(
                    f"repair_tolerance must be in [0, 1), got {repair_tolerance}"
                )
            if planner == "full" or isinstance(planner, Planner):
                raise ValueError(
                    "repair_tolerance applies to the 'incremental' planner; "
                    "configure an explicit planner instance directly"
                )
        if estimation not in (None, "oracle", "online"):
            raise ValueError(
                f"estimation must be None, 'oracle' or 'online', "
                f"got {estimation!r}"
            )
        if probes_per_node < 0:
            raise ValueError(
                f"probes_per_node must be >= 0, got {probes_per_node}"
            )
        if not 0.0 < estimator_decay <= 1.0:
            raise ValueError(
                f"estimator_decay must be in (0, 1], got {estimator_decay}"
            )
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
        if estimator_warmstart and estimation != "online":
            raise ValueError(
                "estimator_warmstart requires estimation='online'"
            )
        self.platform = platform
        self.queue = EventQueue(events)
        self.horizon = int(horizon)
        self.seed = seed
        self.cache = cache if cache is not None else PlanCache()
        self._sim = _EpochSimParams(
            packets_per_slot=packets_per_slot,
            warmup_fraction=warmup_fraction,
        )
        self.min_epoch_slots = int(min_epoch_slots)
        self.sim_backend = sim_backend
        self.warm_epochs = bool(warm_epochs)
        self.sim_workers = sim_workers
        self.sim_worker_mode = sim_worker_mode
        self._rng = random.Random(seed)
        self.now = 0
        self._planner_spec = planner
        self.repair_tolerance = repair_tolerance
        self.plan_slack = float(plan_slack)
        #: Run-loop wall-time breakdown, reset per :meth:`run`.
        self.phase_seconds: dict[str, float] = {}
        # A concrete spec (instance or name) materializes eagerly; only
        # ``None`` waits for run() to pair a default with the controller.
        self.planner: Optional[Planner] = None
        if isinstance(planner, Planner):
            self.planner = planner
        elif isinstance(planner, str):
            self.planner = self._make_planner(planner)
        #: The plan the run loop currently simulates (planner input).
        self.active_plan: Optional[Plan] = None
        #: Outcomes of planner calls not yet consumed by the run loop,
        #: keyed by plan identity (controllers return bare plans).
        self._pending: dict[int, PlanOutcome] = {}
        #: Warm-state carry-over: one live transport run per active plan.
        self._warm_sim: Optional[PacketSimEngine] = None
        self._warm_plan: Optional[Plan] = None
        self._warm_failed: set[int] = set()
        #: Estimation-in-the-loop state.  ``"oracle"`` (the default) is a
        #: pure passthrough: planners read the platform directly and no
        #: probe is ever issued.
        self.estimation = "online" if estimation == "online" else "oracle"
        self._view: Optional[EstimatedPlatformView] = None
        if self.estimation == "online":
            self._view = EstimatedPlatformView(
                platform,
                ProbeScheduler(
                    seed=seed if seed is not None else 0,
                    probes_per_node=probes_per_node,
                    noise_sigma=noise_sigma,
                ),
                OnlineEstimator(decay=estimator_decay),
            )
        self.estimator_warmstart = bool(estimator_warmstart)
        if self.estimator_warmstart and self._view is not None:
            self._seed_estimator_from_cache()
        self._pending_probes = 0
        self._pending_est_error: Optional[float] = None
        #: Truth-clipped transport scheme, memoized per installed plan.
        self._clip_plan: Optional[Plan] = None
        self._clip_scheme = None

    # ------------------------------------------------------------------
    # Estimation seam
    # ------------------------------------------------------------------
    def _seed_estimator_from_cache(self) -> None:
        """Estimator warm-start: seed priors from the nearest cached plan.

        ``start_session`` on a known scenario family re-solves
        populations the shared :class:`~repro.planning.PlanCache` has
        already seen; their class-sorted bandwidth profiles are the
        tracker's institutional memory.  The profile closest in
        ``(n, m)`` to the current roster is assigned to the alive peers
        class-by-class (profile values in canonical non-increasing
        order, peers in id order, cyclically when sizes differ), so the
        estimator's pre-probe view carries the family's bandwidth
        *distribution* instead of a flat ``prior_bw`` — cold imputation
        is skipped without leaking any oracle per-peer value.  A cold
        cache leaves the estimator untouched.
        """
        from ..core.instance import NodeKind

        opens = []
        guardeds = []
        for node_id, state in sorted(self.platform.nodes.items()):
            if not state.alive:
                continue
            (opens if state.kind == NodeKind.OPEN else guardeds).append(node_id)
        profile = self.cache.nearest_profile(len(opens), len(guardeds))
        if profile is None:
            return
        warm: dict[int, float] = {}
        if profile.open_bws:
            for k, ext in enumerate(opens):
                warm[ext] = profile.open_bws[k % len(profile.open_bws)]
        if profile.guarded_bws:
            for k, ext in enumerate(guardeds):
                warm[ext] = profile.guarded_bws[k % len(profile.guarded_bws)]
        if warm:
            assert self._view is not None
            self._view.estimator.warm_start(warm)

    @property
    def view(self) -> Union[DynamicPlatform, EstimatedPlatformView]:
        """The platform *as planners see it*: the oracle
        :class:`DynamicPlatform` by default, the
        :class:`~repro.estimation.online.EstimatedPlatformView` when
        ``estimation="online"``.  Both expose the same read API
        (``snapshot`` / ``alive_ids`` / ``is_alive`` / ``num_alive``), so
        planners consume either transparently.
        """
        return self._view if self._view is not None else self.platform

    def _observe(self, events: tuple[Event, ...]) -> None:
        """One measurement round at the current epoch boundary.

        Feeds applied churn events to the estimator, issues this
        boundary's probes, and stages probe-cost / estimation-error
        accounting for the next :class:`EpochReport`.  A no-op in oracle
        mode.
        """
        if self._view is None:
            return
        if events:
            self._view.note_events(events)
        self._pending_probes += self._view.refresh(self.now)
        self._pending_est_error = self._view.median_error()

    def _transport_scheme(self, plan: Plan):
        """The scheme the per-epoch transport actually runs.

        Oracle mode simulates the plan verbatim.  Under estimation the
        plan's edge rates were provisioned against *estimated* uplinks,
        so each member's outgoing rates are proportionally clipped to
        its true capacity at install time (per-node QoS enforcement, the
        model of :func:`~repro.analysis.robustness.clip_to_capacities`)
        — an overestimated relay under-delivers downstream exactly as it
        would in the field, which is what makes the measured
        estimation gap real rather than cosmetic.
        """
        if self._view is None:
            return plan.scheme
        if self._clip_plan is plan:
            return self._clip_scheme
        # Deferred import: repro.analysis imports repro.runtime at module
        # load, so the clipper can only be resolved lazily here.
        from ..analysis.robustness import clip_to_capacities

        self._clip_scheme = clip_to_capacities(
            plan.scheme, self.platform.true_capacities(plan.node_ids)
        )
        self._clip_plan = plan
        return self._clip_scheme

    # ------------------------------------------------------------------
    # Planner seam
    # ------------------------------------------------------------------
    def _make_planner(self, name: str) -> Planner:
        kwargs = {}
        if name == "incremental" and self.repair_tolerance is not None:
            kwargs["tolerance"] = self.repair_tolerance
        if self.plan_slack > 0.0:
            kwargs["slack"] = self.plan_slack
        return make_planner(name, **kwargs)

    def _resolve_planner(self, controller: "Controller") -> Planner:
        """Default pairing for ``planner=None``, chosen per controller:
        the ``incremental`` policy gets the incremental planner (honoring
        ``repair_tolerance``), every other policy the full-rebuild one.
        """
        return self._make_planner(
            "incremental" if controller.name == "incremental" else "full"
        )

    def _ensure_planner(self) -> Planner:
        if self.planner is None:
            self.planner = self._make_planner("full")
        return self.planner

    # ------------------------------------------------------------------
    # Controller-facing API
    # ------------------------------------------------------------------
    def build_plan(self) -> Plan:
        """Fully optimize the current alive swarm into a fresh :class:`Plan`."""
        planner = self._ensure_planner()
        started = time.perf_counter()  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
        plan = planner.build(self)
        outcome = PlanOutcome(
            plan, op="build", seconds=time.perf_counter() - started  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
        )
        self._pending[id(plan)] = outcome
        return plan

    def replan(self, events: Iterable[Event]) -> Plan:
        """Ask the planner to react to ``events`` on the active plan.

        Returns the resulting plan — an incremental repair when the
        planner managed one, a full rebuild otherwise (including the
        degenerate case of no active plan yet).

        Under estimation, join/drift events are rewritten to their
        *observed* bandwidths first: the repair planner's overlay model
        must stay consistent with the estimated view it was built from,
        never peek at oracle values through the event feed.
        """
        if self.active_plan is None:
            return self.build_plan()
        planner = self._ensure_planner()
        if self._view is not None:
            events = tuple(self._view.observe_event(ev) for ev in events)
        started = time.perf_counter()  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
        outcome = planner.replan(self, self.active_plan, tuple(events))
        outcome.seconds = time.perf_counter() - started  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
        self._pending[id(outcome.plan)] = outcome
        return outcome.plan

    def _consume_outcome(self, plan: Plan) -> PlanOutcome:
        """Accounting record for an installed plan (custom controllers may
        hand the engine plans it never produced: count those as builds)."""
        outcome = self._pending.pop(id(plan), None)
        self._pending.clear()
        if outcome is None:
            outcome = PlanOutcome(plan, op="build")
        return outcome

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, controller: "Controller") -> RunResult:
        epochs: list[EpochReport] = []
        rebuilds = 0
        repairs = 0
        repair_fallbacks = 0
        plan_seconds = 0.0
        repair_latencies: list[int] = []
        pending_departures: list[int] = []  # departure times awaiting a plan

        if self.planner is None:
            self.planner = self._resolve_planner(controller)

        # Wall-time breakdown for --profile: ``plan`` is time inside the
        # planner, ``arbitrate`` the controller's decision logic around
        # it, ``simulate`` the epoch transport, ``epoch_boundary`` the
        # event application / estimation / bookkeeping between epochs.
        phases = {
            "plan": 0.0, "arbitrate": 0.0,
            "simulate": 0.0, "epoch_boundary": 0.0,
        }
        self.phase_seconds = phases

        tick = time.perf_counter()  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
        initial = self.queue.pop_until(0)
        initial = [self._apply_event(ev) for ev in initial]
        self._observe(tuple(initial))
        phases["epoch_boundary"] += time.perf_counter() - tick  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
        tick = time.perf_counter()  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
        plan = controller.start(self)
        decided = time.perf_counter() - tick  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
        outcome = self._consume_outcome(plan)
        self.active_plan = plan
        rebuilds += 1  # the initial build counts as one optimization
        plan_seconds += outcome.seconds
        phases["plan"] += outcome.seconds
        phases["arbitrate"] += max(0.0, decided - outcome.seconds)
        plan_op, op_seconds = "build", outcome.seconds

        fired: tuple[Event, ...] = tuple(initial)
        while self.now < self.horizon:
            end = self._epoch_end(controller)
            tick = time.perf_counter()  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
            report = self._simulate_epoch(
                plan, self.now, end, fired,
                rebuilt=(self.now == plan.built_at),
                plan_op=plan_op if self.now == plan.built_at else "keep",
                plan_seconds=op_seconds if self.now == plan.built_at else 0.0,
            )
            phases["simulate"] += time.perf_counter() - tick  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
            epochs.append(report)
            self.now = end
            if self.now >= self.horizon:
                break
            tick = time.perf_counter()  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
            popped = self.queue.pop_until(self.now)
            applied = []
            for ev in popped:
                ev = self._apply_event(ev)
                applied.append(ev)
                if isinstance(ev, NodeLeave):
                    pending_departures.append(ev.time)
            fired = tuple(applied)
            self._observe(fired)
            phases["epoch_boundary"] += time.perf_counter() - tick  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
            tick = time.perf_counter()  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
            new_plan = controller.on_change(self, fired)
            decided = time.perf_counter() - tick  # repro: noqa REP002 -- plan/phase timing telemetry (compare=False); not replayed
            if new_plan is not None:
                plan = new_plan
                outcome = self._consume_outcome(plan)
                self.active_plan = plan
                if outcome.op == "repair":
                    repairs += 1
                else:
                    rebuilds += 1
                    repair_fallbacks += int(outcome.fallback)
                plan_seconds += outcome.seconds
                phases["plan"] += outcome.seconds
                phases["arbitrate"] += max(0.0, decided - outcome.seconds)
                plan_op, op_seconds = outcome.op, outcome.seconds
                repair_latencies.extend(
                    self.now - t for t in pending_departures
                )
                pending_departures.clear()
            else:
                phases["arbitrate"] += decided

        hits, misses = self.cache.stats()
        return RunResult(
            controller=controller.name,
            horizon=self.horizon,
            epochs=epochs,
            rebuilds=rebuilds,
            repair_latencies=repair_latencies,
            cache_hits=hits,
            cache_misses=misses,
            seed=self.seed,
            planner=self.planner.name,
            repairs=repairs,
            repair_fallbacks=repair_fallbacks,
            plan_seconds=plan_seconds,
            estimation=self.estimation,
            probes=sum(e.probes for e in epochs),
            phase_seconds=dict(phases),
        )

    def _apply_event(self, ev: Event) -> Event:
        """Apply one event; anonymous joins come back with their assigned
        id resolved, so planners (and epoch reports) see concrete peers."""
        assigned = self.platform.apply(ev)
        if isinstance(ev, NodeJoin) and ev.node_id is None:
            ev = dataclasses.replace(ev, node_id=assigned)
        return ev

    def _epoch_end(self, controller: "Controller") -> int:
        """Next decision point: event, controller wake-up, or horizon.

        ``min_epoch_slots`` is the control-loop tick: with a tick above 1
        the engine refuses to cut epochs shorter than the tick, batching
        event storms (e.g. a flash crowd arriving one peer per slot) into
        one decision instead of simulating unmeasurable 1-slot epochs.
        Events still *take effect* at the boundary where they are popped,
        never before their timestamp.
        """
        end = self.horizon
        pending = self.queue.peek_time()
        if pending is not None:
            end = min(end, max(pending, self.now + 1))
        wake = controller.wake_after(self.now)
        if wake is not None:
            end = min(end, max(int(wake), self.now + 1))
        end = max(end, self.now + self.min_epoch_slots)
        return min(max(end, self.now + 1), max(self.horizon, self.now + 1))

    # ------------------------------------------------------------------
    # Epoch measurement
    # ------------------------------------------------------------------
    def _simulate_epoch(
        self,
        plan: Plan,
        start: int,
        end: int,
        events: tuple[Event, ...],
        *,
        rebuilt: bool,
        plan_op: str = "keep",
        plan_seconds: float = 0.0,
    ) -> EpochReport:
        alive = self.platform.alive_ids()
        optimal_rate = self.cache.optimal_rate(self.platform.snapshot()[0])
        probes, est_error = self._pending_probes, self._pending_est_error
        self._pending_probes, self._pending_est_error = 0, None
        if not alive:
            # Vacuous epoch: nobody to serve.  A plan built on an empty
            # swarm carries rate inf (the solver's convention for zero
            # receivers), which must not leak into slot-weighted means —
            # report it as 0 and let delivered_fraction read 1.0.
            rate = plan.rate if math.isfinite(plan.rate) else 0.0
            return EpochReport(
                start=start, end=end, num_alive=0,
                planned_rate=rate, optimal_rate=optimal_rate,
                min_goodput=rate, mean_goodput=rate,
                starved=0, unserved=0, rebuilt=rebuilt, events=events,
                plan_op=plan_op, plan_seconds=plan_seconds,
                probes=probes, estimation_error=est_error,
            )

        goodput_by_id = dict.fromkeys(alive, 0.0)
        if plan.rate > 0 and plan.size > 1:
            rate = plan.rate * RATE_BACKOFF
            ppu = self._sim.packets_per_slot / max(rate, 1e-12)
            failed = {
                k
                for k, node_id in enumerate(plan.node_ids)
                if k > 0 and not self.platform.is_alive(node_id)
            }
            if self.warm_epochs:
                goodput = self._warm_epoch_goodput(
                    plan, rate, ppu, failed, end - start
                )
            else:
                sim_seed = (
                    self._rng.randrange(2**32)
                    if self.seed is not None
                    else None
                )
                goodput = simulate_packet_broadcast(
                    plan.instance,
                    self._transport_scheme(plan),
                    rate,
                    slots=end - start,
                    packets_per_unit=ppu,
                    burst_cap=self._sim.burst_cap,
                    warmup_fraction=self._sim.warmup_fraction,
                    seed=sim_seed,
                    failures={k: 0 for k in sorted(failed)},
                    backend=self.sim_backend,
                    workers=self.sim_workers,
                    worker_mode=self.sim_worker_mode,
                ).goodput
            for k, node_id in enumerate(plan.node_ids):
                if k > 0 and node_id in goodput_by_id:
                    goodput_by_id[node_id] = goodput[k]

        values = list(goodput_by_id.values())
        planned_members = set(plan.node_ids)
        return EpochReport(
            start=start,
            end=end,
            num_alive=len(alive),
            planned_rate=plan.rate,
            optimal_rate=optimal_rate,
            min_goodput=min(values),
            mean_goodput=math.fsum(values) / len(values),
            starved=sum(1 for v in values if v < 0.5 * plan.rate),
            unserved=sum(1 for i in alive if i not in planned_members),
            rebuilt=rebuilt,
            events=events,
            plan_op=plan_op,
            plan_seconds=plan_seconds,
            probes=probes,
            estimation_error=est_error,
        )

    def _warm_epoch_goodput(
        self,
        plan: Plan,
        rate: float,
        ppu: float,
        failed: set[int],
        slots: int,
    ) -> list[float]:
        """Advance the plan's *persistent* transport run by one epoch.

        The packet buffers/credits/RNG carry over between epochs of the
        same plan, so short epochs measure real transients instead of
        fresh ramp-ups.  A rebuild necessarily starts a new run (new
        overlay, empty buffers), whose first epoch honors
        ``warmup_fraction`` exactly like cold mode; every later epoch of
        the plan is warm and measured over its full span.  Members that
        departed since the last epoch are failed at the run's *current*
        slot, mid-stream, which is when the field would see their edges
        go dark.
        """
        sim = self._warm_sim
        warmup = 0
        if sim is None or self._warm_plan is not plan:
            sim_seed = (
                self._rng.randrange(2**32) if self.seed is not None else None
            )
            sim = PacketSimEngine(
                plan.instance,
                self._transport_scheme(plan),
                rate,
                packets_per_unit=ppu,
                burst_cap=self._sim.burst_cap,
                seed=sim_seed,
                failures={k: 0 for k in sorted(failed)},
                backend=self.sim_backend,
                workers=self.sim_workers,
                worker_mode=self.sim_worker_mode,
            )
            self._warm_sim = sim
            self._warm_plan = plan
            self._warm_failed = set(failed)
            warmup = int(slots * self._sim.warmup_fraction)
        else:
            for k in sorted(failed - self._warm_failed):
                sim.fail_node(k)
            self._warm_failed |= failed
        sim.step(warmup)
        sim.begin_window()
        sim.step(slots - warmup)
        return sim.window_goodput()
