"""Event-driven runtime for dynamic platforms.

The paper optimizes a *frozen* platform; its conclusion concedes the
result is "probably not resilient to churn".  This subsystem closes that
gap: a heapq-ordered event engine advances an evolving swarm (arrivals,
departures, bandwidth drift) while pluggable controller policies decide
when to re-run the Theorem 4.1 optimizer, and every epoch is validated
through the same randomized packet transport as the static pipeline.

Layout:

* :mod:`~repro.runtime.events` — event types, the queue, the mutable
  :class:`~repro.runtime.events.DynamicPlatform`;
* :mod:`~repro.runtime.engine` — the epoch loop, planner injection and
  per-epoch plan-cost accounting, run records;
* :mod:`~repro.runtime.controller` — static / periodic / reactive /
  incremental re-optimization policies plus a name registry;
* :mod:`~repro.runtime.scenarios` — declarative named workloads
  (steady churn, flash crowd, diurnal drift, rack failure, Mathieu-style
  live streaming) and the user-extensible registry;
* :mod:`~repro.runtime.batch` — ``concurrent.futures`` sweep runner
  with per-worker overlay memoization.

Plan construction itself (the Theorem 4.1 pipeline, the LRU
:class:`~repro.planning.PlanCache`, incremental repair) lives in
:mod:`repro.planning`; ``OverlayCache`` and ``Plan`` remain importable
from here for backward compatibility.  The measurement loop that lets
controllers plan on *estimated* rather than oracle bandwidths
(``RuntimeEngine(estimation="online")``) lives in
:mod:`repro.estimation.online` and plugs in through ``engine.view``.
"""

from ..planning import (
    PLANNERS,
    FullRebuildPlanner,
    IncrementalRepairPlanner,
    PlanCache,
    PlanDelta,
    PlanOutcome,
    Planner,
    make_planner,
    planner_names,
)
from .batch import (
    BatchJob,
    RunSummary,
    run_batch,
    run_job,
    scenario_grid,
    summarize_batch,
)
from .controller import (
    CONTROLLERS,
    Controller,
    IncrementalController,
    PeriodicController,
    ReactiveController,
    StaticController,
    controller_names,
    make_controller,
)
from .engine import EpochReport, OverlayCache, Plan, RunResult, RuntimeEngine
from .events import (
    BandwidthDrift,
    DynamicPlatform,
    Event,
    EventQueue,
    NodeJoin,
    NodeLeave,
    NodeState,
)
from .scenarios import (
    SCENARIOS,
    DiurnalDrift,
    FlashCrowd,
    LiveStreamTrace,
    RackFailure,
    Scenario,
    ScenarioRun,
    SteadyChurn,
    get_scenario,
    register_scenario,
    scenario_names,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    # events
    "Event",
    "NodeJoin",
    "NodeLeave",
    "BandwidthDrift",
    "EventQueue",
    "NodeState",
    "DynamicPlatform",
    # engine
    "RuntimeEngine",
    "OverlayCache",
    "Plan",
    "EpochReport",
    "RunResult",
    # planning seam (re-exported from repro.planning)
    "PlanCache",
    "PlanDelta",
    "PlanOutcome",
    "Planner",
    "FullRebuildPlanner",
    "IncrementalRepairPlanner",
    "PLANNERS",
    "make_planner",
    "planner_names",
    # controllers
    "Controller",
    "StaticController",
    "PeriodicController",
    "ReactiveController",
    "IncrementalController",
    "CONTROLLERS",
    "make_controller",
    "controller_names",
    # scenarios
    "Scenario",
    "ScenarioRun",
    "SteadyChurn",
    "FlashCrowd",
    "DiurnalDrift",
    "RackFailure",
    "LiveStreamTrace",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "spec_to_dict",
    "spec_from_dict",
    # batch
    "BatchJob",
    "RunSummary",
    "run_job",
    "run_batch",
    "scenario_grid",
    "summarize_batch",
]
