"""Named instance families from the paper's figures and proofs.

* :func:`figure1_instance` — the running example (n=2 open, m=3 guarded,
  optimal cyclic throughput 4.4, optimal acyclic throughput 4).
* :func:`figure6_instance` / :func:`figure6_optimal_scheme` — the family
  proving that optimal cyclic schemes with guarded nodes may require
  arbitrarily large degree: the source must open ``m`` connections while
  ``ceil(b0 / T*) = 1``.
* :func:`five_sevenths_instance` — Figure 18 / Theorem 6.2's tight
  worst case: at ``eps = 1/14`` both candidate orders achieve exactly
  ``T*_ac = 5/7`` while ``T* = 1``.
* :func:`theorem63_instance` — the ``I(alpha, k)`` family showing the
  asymptotic ratio ``(1 + sqrt(41))/8``.
* :func:`tight_homogeneous_instance` — the worst-case-dominant class of
  Lemma 11.1 explored exhaustively in Figure 7.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.instance import Instance
from ..core.scheme import BroadcastScheme

__all__ = [
    "figure1_instance",
    "figure2_word",
    "figure5_word",
    "figure6_instance",
    "figure6_optimal_scheme",
    "five_sevenths_instance",
    "FIVE_SEVENTHS_EPS",
    "theorem63_instance",
    "theorem63_alpha_fraction",
    "tight_homogeneous_instance",
]


def figure1_instance() -> Instance:
    """The paper's running example: ``b0=6``, open ``(5,5)``, guarded
    ``(4,1,1)``.

    Known exact values: ``T* = min(6, 16/3, 22/5) = 4.4`` (Lemma 5.1) and
    ``T*_ac = 4`` (Figures 2/5; certified in the tests by LP and by the
    dichotomic search).
    """
    return Instance(6.0, (5.0, 5.0), (4.0, 1.0, 1.0))


#: Word of the Figure 2 scheme (order 0,3,1,2,4,5).
def figure2_word() -> str:
    return "googg"


#: Word of the Figure 5 scheme built by Algorithm 2 (order 0,3,1,4,2,5).
def figure5_word() -> str:
    return "gogog"


def figure6_instance(m: int) -> Instance:
    """Unbounded-degree family: ``b0 = 1``, one open node at ``m - 1``,
    ``m`` guarded nodes at ``1/m``.

    ``T* = min(1, m/m, (1 + (m-1) + 1)/(m+1)) = 1`` but any scheme of
    throughput 1 forces the source to feed all ``m`` guarded nodes with
    *distinct* data (the open node's inflow, capped at 1, must be fully
    fresh to be re-exported at rate ``m - 1``), i.e. source outdegree
    ``m`` while ``ceil(b0 / T*) = 1``.
    """
    if m < 2:
        raise ValueError("the family needs m >= 2 guarded nodes")
    return Instance(1.0, (float(m - 1),), tuple([1.0 / m] * m))


def figure6_optimal_scheme(m: int) -> BroadcastScheme:
    """The optimal (degree-``m``) scheme for :func:`figure6_instance`.

    The source splits the unit stream into ``m`` distinct substreams of
    rate ``1/m``, one per guarded node; each guarded node relays its
    substream to the open node ``C1`` (which thereby receives the full
    stream at rate 1); ``C1`` re-exports to each guarded node the
    ``(m-1)/m`` it is missing.  Max-flow to every node is exactly 1.
    """
    inst = figure6_instance(m)
    scheme = BroadcastScheme.for_instance(inst)
    open_node = 1
    for k in range(m):
        guard = 2 + k  # guarded nodes are indices 2..m+1
        scheme.set_rate(0, guard, 1.0 / m)
        scheme.set_rate(guard, open_node, 1.0 / m)
        scheme.set_rate(open_node, guard, (m - 1.0) / m)
    return scheme


#: The epsilon at which both orders of Figure 18 meet at 5/7.
FIVE_SEVENTHS_EPS: float = 1.0 / 14.0


def five_sevenths_instance(eps: float = FIVE_SEVENTHS_EPS) -> Instance:
    """Theorem 6.2's tight instance (Figure 18).

    ``b0 = 1``, one open node at ``1 + 2 eps``, two guarded nodes at
    ``1/2 - eps``; ``T* = 1``.  The three increasing orders achieve
    ``T*_ac(ogg) = (2/3)(1 + eps)`` and ``T*_ac(gog) = 3/4 - eps/2`` (the
    third, ``ggo``, is dominated); both equal ``5/7`` at ``eps = 1/14``.
    """
    if not 0.0 <= eps < 0.5:
        raise ValueError("eps must lie in [0, 1/2)")
    return Instance(1.0, (1.0 + 2.0 * eps,), (0.5 - eps, 0.5 - eps))


def theorem63_alpha_fraction(max_denominator: int = 64) -> Fraction:
    """A rational approximation of ``alpha = (sqrt(41) - 3)/8``.

    Theorem 6.3 requires ``alpha = p/q`` rational; the bound is continuous
    in ``alpha`` so a close fraction exhibits a ratio close to
    ``(1 + sqrt(41))/8``.
    """
    from ..core.bounds import THEOREM63_ALPHA

    return Fraction(THEOREM63_ALPHA).limit_denominator(max_denominator)


def theorem63_instance(alpha: Fraction, k: int) -> Instance:
    """The family ``I(alpha, k)``: ``b0 = 1``, ``k q`` open nodes at
    ``alpha = p/q`` and ``k p`` guarded nodes at ``1/alpha``.

    Lemma 5.1 gives ``T* = 1`` for every ``alpha < 1`` and ``k``; Theorem
    6.3 bounds ``T*_ac <= max(f_alpha(floor(1/alpha)),
    g_alpha(ceil(1/alpha)))`` independently of ``k``.
    """
    if not isinstance(alpha, Fraction):
        alpha = Fraction(alpha).limit_denominator(10**6)
    if not 0 < alpha < 1:
        raise ValueError("theorem 6.3 needs 0 < alpha < 1")
    if k < 1:
        raise ValueError("k must be >= 1")
    p, q = alpha.numerator, alpha.denominator
    a = float(alpha)
    return Instance(1.0, tuple([a] * (k * q)), tuple([1.0 / a] * (k * p)))


def tight_homogeneous_instance(n: int, m: int, delta: float) -> Instance:
    """The Lemma 11.1 worst-case-dominant class (explored in Figure 7).

    ``b0 = 1`` (= ``T*``), every open node at ``o = (m - 1 + delta)/n``,
    every guarded node at ``g = (n - delta)/m``, for ``0 <= delta <= n``
    (and ``delta >= 1 - m`` so that ``o >= 0``).  Tightness:
    ``b0 + O + G = n + m`` so no bandwidth can be wasted at rate ``T*=1``,
    and ``b0 + O = m + delta >= m`` keeps the guarded constraint slack.

    ``m = 0`` forces ``delta = n`` (all bandwidth is open).
    """
    if n < 1:
        raise ValueError("the class needs at least one open node")
    if m == 0 and abs(delta - n) > 1e-12:
        raise ValueError("with m = 0 tightness forces delta = n")
    if not -1e-12 <= delta <= n + 1e-12:
        raise ValueError(f"delta must lie in [0, n], got {delta}")
    if m - 1 + delta < -1e-12:
        raise ValueError("delta too small: open bandwidth would be negative")
    o = max(0.0, (m - 1 + delta) / n)
    guarded = tuple([max(0.0, (n - delta)) / m] * m) if m else ()
    return Instance(1.0, tuple([o] * n), guarded)
