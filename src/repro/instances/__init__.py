"""Instance generators and named families from the paper."""

from .families import (
    FIVE_SEVENTHS_EPS,
    figure1_instance,
    figure2_word,
    figure5_word,
    figure6_instance,
    figure6_optimal_scheme,
    five_sevenths_instance,
    theorem63_alpha_fraction,
    theorem63_instance,
    tight_homogeneous_instance,
)
from .generators import (
    DISTRIBUTIONS,
    lognormal_bandwidths,
    lognormal_params,
    pareto_bandwidths,
    pareto_params,
    random_instance,
    saturating_source_bw,
    uniform_bandwidths,
)
from .npc import (
    ThreePartition,
    brute_force_three_partition,
    random_yes_instance,
    reduction_instance,
    scheme_from_partition,
    verify_strict_degree_scheme,
)
from .planetlab import PLANETLAB_TABLE, planetlab_table, sample_planetlab

__all__ = [
    "figure1_instance",
    "figure2_word",
    "figure5_word",
    "figure6_instance",
    "figure6_optimal_scheme",
    "five_sevenths_instance",
    "FIVE_SEVENTHS_EPS",
    "theorem63_instance",
    "theorem63_alpha_fraction",
    "tight_homogeneous_instance",
    "DISTRIBUTIONS",
    "random_instance",
    "saturating_source_bw",
    "uniform_bandwidths",
    "pareto_bandwidths",
    "pareto_params",
    "lognormal_bandwidths",
    "lognormal_params",
    "PLANETLAB_TABLE",
    "planetlab_table",
    "sample_planetlab",
    "ThreePartition",
    "reduction_instance",
    "scheme_from_partition",
    "verify_strict_degree_scheme",
    "brute_force_three_partition",
    "random_yes_instance",
]
