"""Random instance generators for the average-case study (Appendix XII).

The paper evaluates the acyclic/cyclic throughput ratio on random
instances drawn from six bandwidth distributions:

* ``Unif100`` — uniform on [1, 100];
* ``Power1`` / ``Power2`` — Pareto with mean 100 and standard deviation
  100 / 1000;
* ``LN1`` / ``LN2`` — log-normal with mean 100 and standard deviation
  100 / 1000;
* ``PLab`` — uniform resampling of (here: synthetic, see
  :mod:`repro.instances.planetlab`) PlanetLab measurements.

Each node is independently open with probability ``p`` and guarded with
probability ``1 - p``.  "In order to concentrate on difficult instances,
the bandwidth of the source node is chosen equal to the optimal cyclic
throughput": :func:`saturating_source_bw` solves the fixed point
``b0 = T*(b0)`` in closed form so that the source is neither a bottleneck
nor sufficient by itself.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..core.instance import Instance, NodeKind
from ..core.runs import ClassRuns
from .planetlab import sample_planetlab

__all__ = [
    "uniform_bandwidths",
    "pareto_bandwidths",
    "lognormal_bandwidths",
    "pareto_params",
    "lognormal_params",
    "DISTRIBUTIONS",
    "saturating_source_bw",
    "random_instance",
    "class_runs",
    "random_class_runs",
]


def uniform_bandwidths(
    rng: np.random.Generator, size: int, low: float = 1.0, high: float = 100.0
) -> np.ndarray:
    """The paper's ``Unif100``: uniform on [1, 100]."""
    return rng.uniform(low, high, size=size)


def pareto_params(mean: float, std: float) -> tuple[float, float]:
    """Shape/scale of a (classical) Pareto with given mean and std.

    For shape ``a`` and scale ``x_m``: ``mean = a x_m / (a - 1)`` and
    ``var / mean^2 = 1 / (a (a - 2))``, so
    ``a = 1 + sqrt(1 + (mean/std)^2)`` (always > 2, finite variance) and
    ``x_m = mean (a - 1) / a``.
    """
    if mean <= 0 or std <= 0:
        raise ValueError("mean and std must be positive")
    ratio = mean / std
    shape = 1.0 + math.sqrt(1.0 + ratio * ratio)
    scale = mean * (shape - 1.0) / shape
    return shape, scale


def pareto_bandwidths(
    rng: np.random.Generator, size: int, mean: float = 100.0, std: float = 100.0
) -> np.ndarray:
    """Pareto (power-law) bandwidths — ``Power1``/``Power2``.

    numpy's ``Generator.pareto(a)`` samples the Lomax distribution
    (classical Pareto shifted to start at 0), so the classical Pareto is
    ``x_m * (1 + Lomax)``.
    """
    shape, scale = pareto_params(mean, std)
    return scale * (1.0 + rng.pareto(shape, size=size))


def lognormal_params(mean: float, std: float) -> tuple[float, float]:
    """(mu, sigma) of a log-normal with given mean and std."""
    if mean <= 0 or std <= 0:
        raise ValueError("mean and std must be positive")
    sigma2 = math.log(1.0 + (std / mean) ** 2)
    mu = math.log(mean) - sigma2 / 2.0
    return mu, math.sqrt(sigma2)


def lognormal_bandwidths(
    rng: np.random.Generator, size: int, mean: float = 100.0, std: float = 100.0
) -> np.ndarray:
    """Log-normal bandwidths — ``LN1``/``LN2``."""
    mu, sigma = lognormal_params(mean, std)
    return rng.lognormal(mu, sigma, size=size)


# Module-level samplers so DISTRIBUTIONS entries pickle into pool job
# specs and resolve by name inside spawned workers (REP005).
def _sample_unif100(rng: np.random.Generator, size: int) -> np.ndarray:
    return uniform_bandwidths(rng, size)


def _sample_power1(rng: np.random.Generator, size: int) -> np.ndarray:
    return pareto_bandwidths(rng, size, 100.0, 100.0)


def _sample_power2(rng: np.random.Generator, size: int) -> np.ndarray:
    return pareto_bandwidths(rng, size, 100.0, 1000.0)


def _sample_ln1(rng: np.random.Generator, size: int) -> np.ndarray:
    return lognormal_bandwidths(rng, size, 100.0, 100.0)


def _sample_ln2(rng: np.random.Generator, size: int) -> np.ndarray:
    return lognormal_bandwidths(rng, size, 100.0, 1000.0)


#: The six named distributions of Figure 19 (name -> sampler(rng, size)).
DISTRIBUTIONS: Dict[str, Callable[[np.random.Generator, int], np.ndarray]] = {
    "Unif100": _sample_unif100,
    "Power1": _sample_power1,
    "Power2": _sample_power2,
    "LN1": _sample_ln1,
    "LN2": _sample_ln2,
    "PLab": sample_planetlab,
}


def saturating_source_bw(
    open_bws: Sequence[float], guarded_bws: Sequence[float]
) -> float:
    """The source bandwidth solving ``b0 = T*`` (Appendix XII protocol).

    With ``O`` the open and ``G`` the guarded bandwidth sum, the cyclic
    optimum is ``min(b0, (b0+O)/m, (b0+O+G)/(n+m))``; the fixed point
    ``b0 = T*(b0)`` is

        ``b0 = min( O/(m-1)  [when m >= 2],  (O+G)/(n+m-1)  [n+m >= 2] )``

    since ``b0 <= (b0+O)/m`` iff ``b0 <= O/(m-1)`` etc.  For degenerate
    shapes (``n + m <= 1``) any ``b0`` satisfies ``T* = b0``; the mean node
    bandwidth (or 1.0) is returned as a sensible default.
    """
    n, m = len(open_bws), len(guarded_bws)
    O = math.fsum(open_bws)
    G = math.fsum(guarded_bws)
    candidates = []
    if m >= 2:
        candidates.append(O / (m - 1))
    if n + m >= 2:
        candidates.append((O + G) / (n + m - 1))
    if candidates:
        return min(candidates)
    total = O + G
    return total / (n + m) if n + m else 1.0


def random_instance(
    rng: np.random.Generator,
    size: int,
    open_prob: float,
    distribution: str | Callable[[np.random.Generator, int], np.ndarray],
    *,
    source_bw: Optional[float] = None,
) -> Instance:
    """Sample one Figure 19 instance.

    ``size`` receivers are drawn from ``distribution`` (a name from
    :data:`DISTRIBUTIONS` or a sampler), each independently open with
    probability ``open_prob``.  ``source_bw`` defaults to the saturating
    fixed point ``b0 = T*``.
    """
    if not 0.0 <= open_prob <= 1.0:
        raise ValueError(f"open_prob must be in [0, 1], got {open_prob}")
    sampler = (
        DISTRIBUTIONS[distribution]
        if isinstance(distribution, str)
        else distribution
    )
    bws = np.asarray(sampler(rng, size), dtype=float)
    if bws.shape != (size,):
        raise ValueError("distribution sampler returned a wrong-shaped array")
    is_open = rng.random(size) < open_prob
    open_bws = tuple(bws[is_open])
    guarded_bws = tuple(bws[~is_open])
    if source_bw is None:
        source_bw = saturating_source_bw(open_bws, guarded_bws)
    return Instance(source_bw, open_bws, guarded_bws)


def class_runs(
    source_bw: Optional[float],
    classes: Sequence[tuple[str, float, int]],
) -> ClassRuns:
    """Class-structured constructor: ``(kind, bandwidth, multiplicity)``.

    The scale-path front door — a million-node swarm described by a
    handful of ``("open", 100.0, 250_000)``-style classes stays O(classes)
    until something actually needs per-node data
    (:meth:`~repro.core.runs.ClassRuns.to_instance` materializes
    lazily, on demand).  ``source_bw=None`` applies the saturating
    ``b0 = T*`` fixed point from the class aggregates — no expansion.
    """
    if source_bw is None:
        n = sum(c for k, _, c in classes if k == NodeKind.OPEN)
        m = sum(c for k, _, c in classes if k == NodeKind.GUARDED)
        O = math.fsum(
            bw * c for k, bw, c in classes if k == NodeKind.OPEN
        )
        G = math.fsum(
            bw * c for k, bw, c in classes if k == NodeKind.GUARDED
        )
        candidates = []
        if m >= 2:
            candidates.append(O / (m - 1))
        if n + m >= 2:
            candidates.append((O + G) / (n + m - 1))
        if candidates:
            source_bw = min(candidates)
        else:
            source_bw = (O + G) / (n + m) if n + m else 1.0
    return ClassRuns.from_classes(source_bw, classes)


def random_class_runs(
    rng: np.random.Generator,
    size: int,
    open_prob: float,
    distribution: str | Callable[[np.random.Generator, int], np.ndarray],
    *,
    num_classes: int = 8,
    source_bw: Optional[float] = None,
) -> ClassRuns:
    """Sample a class-structured swarm of ``size`` receivers.

    ``num_classes`` bandwidth values are drawn from ``distribution``;
    each class is open with probability ``open_prob`` and the ``size``
    receivers are spread over the classes via a multinomial split — the
    run-length analogue of :func:`random_instance` (same distributions,
    same saturating default for the source).  Cost is O(num_classes),
    independent of ``size``.
    """
    if not 0.0 <= open_prob <= 1.0:
        raise ValueError(f"open_prob must be in [0, 1], got {open_prob}")
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    if size < num_classes:
        raise ValueError(
            f"size ({size}) must be >= num_classes ({num_classes})"
        )
    sampler = (
        DISTRIBUTIONS[distribution]
        if isinstance(distribution, str)
        else distribution
    )
    bws = np.asarray(sampler(rng, num_classes), dtype=float)
    kinds = np.where(
        rng.random(num_classes) < open_prob, NodeKind.OPEN, NodeKind.GUARDED
    )
    # Every class keeps at least one member; the rest multinomial.
    counts = np.ones(num_classes, dtype=np.int64)
    extra = size - num_classes
    if extra > 0:
        counts += rng.multinomial(extra, np.full(num_classes, 1.0 / num_classes))
    classes = [
        (str(kinds[i]), float(bws[i]), int(counts[i]))
        for i in range(num_classes)
    ]
    return class_runs(source_bw, classes)
