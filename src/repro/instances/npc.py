"""The 3-PARTITION reduction of Theorem 3.1 (Figure 8).

Finding an optimal broadcast scheme that also meets the *strict* degree
bound ``o_i <= ceil(b_i / T)`` is strongly NP-complete.  The reduction
maps a 3-PARTITION instance (``3p`` integers in ``(T/4, T/2)`` summing to
``p T``; question: can they be split into ``p`` triples each summing to
``T``?) to a broadcast instance where *no bandwidth can be wasted*:

* source with ``b0 = 3 p T`` (must feed all ``3p`` intermediate nodes at
  exactly rate ``T``, using exactly its ``ceil(b0/T) = 3p`` connections),
* ``3p`` intermediate open nodes with ``b_i = a_i`` (each must spend its
  whole bandwidth on exactly one client, since ``ceil(a_i/T) = 1``),
* ``p`` final nodes with ``b = 0``.

A strict-degree scheme of throughput ``T`` exists iff the triples exist.
This module builds the gadget, converts a partition into a witness scheme,
verifies witness schemes, and brute-forces small instances so the
equivalence can be demonstrated end to end (``examples/npc_reduction.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.exceptions import InvalidInstanceError
from ..core.instance import Instance
from ..core.numerics import safe_ceil_div
from ..core.scheme import BroadcastScheme

__all__ = [
    "ThreePartition",
    "reduction_instance",
    "scheme_from_partition",
    "verify_strict_degree_scheme",
    "brute_force_three_partition",
    "random_yes_instance",
]


@dataclass(frozen=True)
class ThreePartition:
    """A 3-PARTITION instance: ``3p`` integers, target triple-sum ``target``.

    Values are kept sorted descending so they align with the canonical
    node ordering of the reduction instance.
    """

    values: tuple[int, ...]
    target: int

    def __post_init__(self) -> None:
        vals = tuple(sorted((int(v) for v in self.values), reverse=True))
        object.__setattr__(self, "values", vals)
        if len(vals) % 3 != 0 or not vals:
            raise InvalidInstanceError("3-PARTITION needs 3p values, p >= 1")
        p = len(vals) // 3
        if sum(vals) != p * self.target:
            raise InvalidInstanceError(
                f"values sum to {sum(vals)}, expected p*T = {p * self.target}"
            )
        for v in vals:
            if not self.target / 4.0 < v < self.target / 2.0:
                raise InvalidInstanceError(
                    f"value {v} outside the open interval (T/4, T/2) = "
                    f"({self.target / 4}, {self.target / 2})"
                )

    @property
    def p(self) -> int:
        return len(self.values) // 3


def reduction_instance(problem: ThreePartition) -> Instance:
    """The Figure 8 gadget (all nodes open).

    Canonical node layout: source = 0; intermediates = ``1..3p`` (values
    descending); finals = ``3p+1..4p`` (bandwidth 0).
    """
    p = problem.p
    open_bws = tuple(float(v) for v in problem.values) + (0.0,) * p
    return Instance(3.0 * p * problem.target, open_bws, ())


def scheme_from_partition(
    problem: ThreePartition, triples: Sequence[Sequence[int]]
) -> BroadcastScheme:
    """Witness scheme from a solution (indices into ``problem.values``).

    The source feeds every intermediate at rate ``T``; the three
    intermediates of triple ``j`` pour their full bandwidth into final
    node ``3p + 1 + j``.
    """
    p = problem.p
    seen = sorted(i for triple in triples for i in triple)
    if seen != list(range(3 * p)):
        raise InvalidInstanceError("triples must partition the 3p indices")
    for triple in triples:
        if len(triple) != 3 or sum(problem.values[i] for i in triple) != (
            problem.target
        ):
            raise InvalidInstanceError(
                f"triple {tuple(triple)} does not sum to {problem.target}"
            )
    inst = reduction_instance(problem)
    scheme = BroadcastScheme.for_instance(inst)
    for i in range(3 * p):
        scheme.set_rate(0, 1 + i, float(problem.target))
    for j, triple in enumerate(triples):
        final = 3 * p + 1 + j
        for i in triple:
            scheme.set_rate(1 + i, final, float(problem.values[i]))
    return scheme


def verify_strict_degree_scheme(
    problem: ThreePartition, scheme: BroadcastScheme
) -> bool:
    """Check a scheme certifies the 3-PARTITION instance.

    Conditions (all from the reduction's forward direction): model validity
    on the gadget, throughput ``T`` to every receiver, and the *strict*
    degree bound ``o_i <= ceil(b_i / T)``.
    """
    from ..core.throughput import scheme_throughput

    inst = reduction_instance(problem)
    try:
        scheme.validate(inst)
    except Exception:
        return False
    t = float(problem.target)
    if scheme_throughput(scheme, inst) < t * (1 - 1e-9):
        return False
    for i in range(inst.num_nodes):
        if scheme.outdegree(i) > safe_ceil_div(inst.bandwidth(i), t):
            return False
    return True


def brute_force_three_partition(
    problem: ThreePartition,
) -> Optional[list[tuple[int, int, int]]]:
    """Exact backtracking solver (for demo-sized ``p``).

    Returns the triples (as index tuples) or None.  Always takes the
    smallest unassigned index first, which prunes symmetric branches.
    """
    values = problem.values
    target = problem.target
    k = len(values)
    used = [False] * k
    triples: list[tuple[int, int, int]] = []

    def backtrack() -> bool:
        try:
            first = used.index(False)
        except ValueError:
            return True
        used[first] = True
        for second in range(first + 1, k):
            if used[second]:
                continue
            if values[first] + values[second] >= target:
                continue  # values are sorted descending: third would be <= 0
            used[second] = True
            for third in range(second + 1, k):
                if used[third] or values[first] + values[second] + values[
                    third
                ] != target:
                    continue
                used[third] = True
                triples.append((first, second, third))
                if backtrack():
                    return True
                triples.pop()
                used[third] = False
            used[second] = False
        used[first] = False
        return False

    if backtrack():
        return list(triples)
    return None


def random_yes_instance(
    rng: np.random.Generator, p: int, target: int = 100
) -> tuple[ThreePartition, list[tuple[int, int, int]]]:
    """A solvable 3-PARTITION instance plus one planted solution.

    Each planted triple ``(a, b, T - a - b)`` is sampled uniformly from
    the integer triples satisfying the ``(T/4, T/2)`` window.  The
    returned solution is re-indexed to the sorted value order used by
    :class:`ThreePartition`.
    """
    if target % 4 != 0:
        raise ValueError("pick a target divisible by 4 for a clean window")
    lo, hi = target // 4 + 1, (target - 1) // 2  # open interval, integers
    values: list[int] = []
    for _ in range(p):
        while True:
            a = int(rng.integers(lo, hi + 1))
            b = int(rng.integers(lo, hi + 1))
            c = target - a - b
            if lo <= c <= hi:
                values.extend((a, b, c))
                break
    problem = ThreePartition(tuple(values), target)
    solution = brute_force_three_partition(problem)
    assert solution is not None  # planted, hence solvable
    return problem, solution
