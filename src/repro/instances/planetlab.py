"""Synthetic PlanetLab-like outgoing-bandwidth table (PLab* distribution).

The paper's ``PLab`` distribution (Appendix XII) resamples uniformly from
outgoing bandwidth values measured on PlanetLab [14].  That dataset is not
available offline, so — per the reproduction's substitution rule — this
module embeds a *synthetic empirical table* with the same role: a fixed
list of values from which instances sample uniformly with replacement.

The table is generated once (deterministically, fixed seed) from a
three-component log-normal mixture calibrated to the published
characteristics of PlanetLab host bandwidth (heavily heterogeneous,
academic hosting: a low-capacity mass around a few Mbit/s, a broad
campus-class mode in the tens of Mbit/s, and a thin server-class tail up
to ~1 Gbit/s).  What matters for Figure 19 is only that the marginal is
heavy-tailed and fixed — the experiment code path (uniform resampling of
an empirical table) is identical to the paper's.

Values are in Mbit/s.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PLANETLAB_TABLE", "planetlab_table", "sample_planetlab"]

#: Size of the embedded empirical table.
TABLE_SIZE = 300

#: Mixture components: (weight, log-median, log-sigma), Mbit/s.
_COMPONENTS = (
    (0.50, 6.0, 0.80),  # DSL/constrained-host class
    (0.35, 40.0, 0.70),  # campus class
    (0.15, 300.0, 0.50),  # server class
)

#: Clipping range of the synthetic measurements.
_CLIP = (0.5, 1000.0)

#: Fixed generation seed: the table is part of the library's contract.
_TABLE_SEED = 20140925


def _generate_table() -> tuple[float, ...]:
    rng = np.random.default_rng(_TABLE_SEED)
    weights = np.array([w for w, _, _ in _COMPONENTS])
    choices = rng.choice(len(_COMPONENTS), size=TABLE_SIZE, p=weights)
    values = np.empty(TABLE_SIZE)
    for idx, (_, median, sigma) in enumerate(_COMPONENTS):
        mask = choices == idx
        values[mask] = rng.lognormal(np.log(median), sigma, mask.sum())
    values = np.clip(values, *_CLIP)
    return tuple(float(v) for v in np.sort(values))


#: The embedded table (sorted ascending; sampling ignores order).
PLANETLAB_TABLE: tuple[float, ...] = _generate_table()


def planetlab_table() -> tuple[float, ...]:
    """The full synthetic measurement table (read-only)."""
    return PLANETLAB_TABLE


def sample_planetlab(rng: np.random.Generator, size: int) -> np.ndarray:
    """Uniform resampling (with replacement) from the table — the paper's
    ``PLab`` protocol applied to the synthetic table."""
    idx = rng.integers(0, len(PLANETLAB_TABLE), size=size)
    table = np.asarray(PLANETLAB_TABLE)
    return table[idx]
